//! The model's parameter vectors — the paper's Tables 1 and 2.
//!
//! **Machine-dependent** (Table 1), a function of frequency and bandwidth:
//!
//! ```text
//! Mach(f, BW) = (tc, tm, ts, tw, ΔPc, ΔPm, ΔP_NIC, ΔP_IO, P_sys_idle)
//! ```
//!
//! with `tc = CPI / f` and `ΔPc(f) = ΔPc_ref · (f / f_ref)^γ` (Eq. 20,
//! γ ≥ 1; γ = 2 on SystemG).
//!
//! **Application-dependent** (Table 2), a function of workload and
//! parallelism:
//!
//! ```text
//! Appl(n, p) = (α, Wc, Wm, Woc, Wom, M, B)
//! ```
//!
//! where `Wc`/`Wm` are the sequential on-chip/off-chip workloads, `Woc`/
//! `Wom` the parallelization overheads (totals across all processors;
//! `Wom` is frequently *negative* under strong scaling — shrinking per-rank
//! working sets genuinely reduce off-chip traffic), and `M`/`B` the message
//! and byte totals of Eq. 17.

use serde::{Deserialize, Serialize};
use simcluster::ClusterSpec;

/// Machine-dependent parameters (Table 1) at a specific DVFS state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Average time per on-chip instruction, `tc = CPI / f` (seconds).
    pub tc: f64,
    /// Average off-chip (DRAM) access latency `tm` (seconds).
    pub tm: f64,
    /// Message startup time `ts` (seconds).
    pub ts: f64,
    /// Per-byte transmission time `tw` (seconds; Table 1's 8-bit word).
    pub tw: f64,
    /// Per-processor system idle power `P_sys_idle` (watts).
    pub p_sys_idle: f64,
    /// CPU active delta `ΔPc` at this frequency (watts).
    pub delta_pc: f64,
    /// Memory active delta `ΔPm` (watts).
    pub delta_pm: f64,
    /// NIC active delta (watts; the network term of Eq. 18).
    pub delta_pnic: f64,
    /// Disk active delta `ΔP_IO` (watts; ≈ unused for NPB).
    pub delta_pio: f64,
    /// The frequency these parameters describe (Hz).
    pub f_hz: f64,
    /// Reference (nominal) frequency for the power law (Hz).
    pub f_ref_hz: f64,
    /// Power-law exponent γ (Eq. 20).
    pub gamma: f64,
    /// Cycles per instruction (so `tc` can be re-derived at any `f`).
    pub cpi: f64,
}

impl MachineParams {
    /// Derive the vector directly from a cluster specification — the
    /// "ground truth" the calibration pipeline should recover.
    pub fn from_spec(spec: &ClusterSpec, f_hz: f64) -> Self {
        spec.validate();
        let node = &spec.node;
        let f_ref = node.cpu.dvfs.nominal();
        Self {
            tc: node.cpu.tc(f_hz),
            tm: node.memory.dram_latency_s,
            ts: spec.link.startup_s,
            tw: spec.link.per_byte_s,
            p_sys_idle: node.system_idle_w(),
            delta_pc: node.cpu.delta_power(f_hz),
            delta_pm: node.memory.power.delta(),
            delta_pnic: node.nic.delta(),
            delta_pio: node.disk.delta(),
            f_hz,
            f_ref_hz: f_ref,
            gamma: node.cpu.delta.gamma,
            cpi: node.cpu.base_cpi,
        }
    }

    /// The SystemG vector at frequency `f_hz` (panics off the DVFS table).
    pub fn system_g(f_hz: f64) -> Self {
        let spec = simcluster::system_g();
        assert!(
            spec.node.cpu.dvfs.contains(f_hz),
            "{f_hz} Hz is not a SystemG DVFS state"
        );
        Self::from_spec(&spec, f_hz)
    }

    /// The Dori vector at frequency `f_hz`.
    pub fn dori(f_hz: f64) -> Self {
        let spec = simcluster::dori();
        assert!(
            spec.node.cpu.dvfs.contains(f_hz),
            "{f_hz} Hz is not a Dori DVFS state"
        );
        Self::from_spec(&spec, f_hz)
    }

    /// Re-evaluate the frequency-dependent entries at a new DVFS state
    /// (Eq. 20): `tc = CPI/f`, `ΔPc ∝ f^γ`; memory/network latencies and
    /// powers are frequency-independent.
    pub fn at_frequency(&self, f_hz: f64) -> Self {
        assert!(f_hz.is_finite() && f_hz > 0.0, "invalid frequency {f_hz}");
        let mut m = *self;
        m.tc = self.cpi / f_hz;
        m.delta_pc = self.delta_pc * (f_hz / self.f_hz).powf(self.gamma);
        m.f_hz = f_hz;
        m
    }
}

/// Application-dependent parameters (Table 2) at a specific `(n, p)`.
///
/// All workload fields are **totals across all processors** (the sums of
/// Eqs. 15–16), not per-processor values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppParams {
    /// Overlap factor `α ∈ (0, 1]` (§VI.F).
    pub alpha: f64,
    /// Sequential on-chip workload `Wc` (instructions).
    pub wc: f64,
    /// Sequential off-chip workload `Wm` (DRAM accesses).
    pub wm: f64,
    /// Parallel computation overhead `Woc` (instructions; total).
    pub woc: f64,
    /// Parallel memory overhead `Wom` (accesses; total, may be negative).
    pub wom: f64,
    /// Total messages `M`.
    pub messages: f64,
    /// Total bytes `B`.
    pub bytes: f64,
    /// Flat sequential I/O time `T_IO` (seconds; ≈ 0 for NPB).
    pub t_io: f64,
}

impl AppParams {
    /// A pure-compute workload with no overheads — the ideal iso-energy-
    /// efficient application (useful as a fixture and in property tests).
    pub fn ideal(wc: f64) -> Self {
        Self {
            alpha: 1.0,
            wc,
            wm: 0.0,
            woc: 0.0,
            wom: 0.0,
            messages: 0.0,
            bytes: 0.0,
            t_io: 0.0,
        }
    }

    /// Validate physical sanity: workloads non-negative (overheads may be
    /// negative but must not exceed the base workload), α in (0, 1].
    ///
    /// # Panics
    /// Panics when a constraint is violated.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must be in (0,1], got {}",
            self.alpha
        );
        assert!(self.wc >= 0.0 && self.wm >= 0.0, "workloads must be non-negative");
        assert!(
            self.wc + self.woc >= 0.0,
            "total parallel compute workload must stay non-negative"
        );
        assert!(
            self.wm + self.wom >= 0.0,
            "total parallel memory workload must stay non-negative"
        );
        assert!(
            self.messages >= 0.0 && self.bytes >= 0.0 && self.t_io >= 0.0,
            "counts must be non-negative"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_spec_matches_cluster_description() {
        let spec = simcluster::system_g();
        let m = MachineParams::from_spec(&spec, 2.8e9);
        assert!((m.tc - 0.9 / 2.8e9).abs() < 1e-24);
        assert_eq!(m.ts, spec.link.startup_s);
        assert_eq!(m.tw, spec.link.per_byte_s);
        assert_eq!(m.p_sys_idle, spec.node.system_idle_w());
        assert_eq!(m.gamma, 2.0);
    }

    #[test]
    fn at_frequency_rescales_tc_and_delta_pc_only() {
        let m = MachineParams::system_g(2.8e9);
        let lo = m.at_frequency(1.4e9);
        assert!((lo.tc - 2.0 * m.tc).abs() < 1e-20);
        // γ = 2: (1.4/2.8)² = 0.25.
        assert!((lo.delta_pc - 0.25 * m.delta_pc).abs() < 1e-9);
        assert_eq!(lo.tm, m.tm);
        assert_eq!(lo.ts, m.ts);
        assert_eq!(lo.tw, m.tw);
        assert_eq!(lo.delta_pm, m.delta_pm);
        assert_eq!(lo.p_sys_idle, m.p_sys_idle);
    }

    #[test]
    fn at_frequency_is_consistent_with_from_spec() {
        let spec = simcluster::system_g();
        let hi = MachineParams::from_spec(&spec, 2.8e9);
        let direct = MachineParams::from_spec(&spec, 1.6e9);
        let derived = hi.at_frequency(1.6e9);
        assert!((direct.tc - derived.tc).abs() < 1e-20);
        assert!((direct.delta_pc - derived.delta_pc).abs() < 1e-9);
    }

    #[test]
    fn ideal_app_validates() {
        AppParams::ideal(1e9).validate();
    }

    #[test]
    fn negative_wom_is_allowed_within_bounds() {
        let mut a = AppParams::ideal(1e9);
        a.wm = 100.0;
        a.wom = -40.0;
        a.validate();
    }

    #[test]
    #[should_panic(expected = "stay non-negative")]
    fn wom_cannot_exceed_wm() {
        let mut a = AppParams::ideal(1e9);
        a.wm = 100.0;
        a.wom = -140.0;
        a.validate();
    }

    #[test]
    #[should_panic(expected = "not a SystemG DVFS state")]
    fn system_g_rejects_off_table_frequency() {
        MachineParams::system_g(3.0e9);
    }
}
