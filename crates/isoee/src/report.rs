//! Text rendering of model objects: parameter tables (in the layout of the
//! paper's Tables 1–2), validation summaries (Figs. 3–4), and EE surfaces
//! (Figs. 5–9) — so library users can inspect what the model is doing
//! without writing formatting code.

use crate::params::{AppParams, MachineParams};
use crate::scaling::Surface;
use crate::validate::ValidationSummary;

/// Render a machine vector as the paper's Table 1.
pub fn machine_table(m: &MachineParams) -> String {
    let mut out = String::new();
    out.push_str("machine-dependent parameters (Table 1)\n");
    out.push_str(&format!(
        "  f            {:>12.3e}  Hz (gamma = {})\n",
        m.f_hz, m.gamma
    ));
    out.push_str(&format!(
        "  tc = CPI/f   {:>12.3e}  s/instr (CPI {:.3})\n",
        m.tc.raw(),
        m.cpi
    ));
    out.push_str(&format!("  tm           {:>12.3e}  s/access\n", m.tm.raw()));
    out.push_str(&format!(
        "  ts           {:>12.3e}  s/message\n",
        m.ts.raw()
    ));
    out.push_str(&format!("  tw           {:>12.3e}  s/byte\n", m.tw.raw()));
    out.push_str(&format!(
        "  P_sys_idle   {:>12.3}  W/processor\n",
        m.p_sys_idle.raw()
    ));
    out.push_str(&format!("  dPc          {:>12.3}  W\n", m.delta_pc.raw()));
    out.push_str(&format!("  dPm          {:>12.3}  W\n", m.delta_pm.raw()));
    out.push_str(&format!("  dP_nic       {:>12.3}  W\n", m.delta_pnic.raw()));
    out.push_str(&format!("  dP_io        {:>12.3}  W\n", m.delta_pio.raw()));
    out
}

/// Render an application vector as the paper's Table 2.
pub fn app_table(a: &AppParams) -> String {
    let mut out = String::new();
    out.push_str("application-dependent parameters (Table 2)\n");
    out.push_str(&format!("  alpha        {:>12.3}\n", a.alpha));
    out.push_str(&format!(
        "  Wc           {:>12.3e}  instructions\n",
        a.wc.raw()
    ));
    out.push_str(&format!(
        "  Wm           {:>12.3e}  off-chip accesses\n",
        a.wm.raw()
    ));
    out.push_str(&format!(
        "  Woc          {:>+12.3e}  instructions\n",
        a.woc.raw()
    ));
    out.push_str(&format!(
        "  Wom          {:>+12.3e}  accesses\n",
        a.wom.raw()
    ));
    out.push_str(&format!(
        "  M            {:>12.3e}  messages\n",
        a.messages.raw()
    ));
    out.push_str(&format!("  B            {:>12.3e}  bytes\n", a.bytes.raw()));
    out.push_str(&format!("  T_IO         {:>12.3e}  s\n", a.t_io.raw()));
    out
}

/// Render a validation summary as one group of the paper's Fig. 4.
pub fn validation_table(s: &ValidationSummary) -> String {
    let mut out = format!("{}: model vs measurement\n", s.name);
    out.push_str("  p      predicted (J)   measured (J)    error\n");
    for pt in &s.points {
        out.push_str(&format!(
            "  {:<5}  {:>13.2}  {:>13.2}  {:>+7.2}%\n",
            pt.p,
            pt.predicted_j.raw(),
            pt.measured_j.raw(),
            pt.error_pct()
        ));
    }
    out.push_str(&format!(
        "  mean |error| = {:.2}%   max |error| = {:.2}%\n",
        s.mean_abs_error_pct(),
        s.max_abs_error_pct()
    ));
    out
}

/// Render an EE surface as an aligned grid (`y_label` names the row axis).
pub fn surface_table(s: &Surface, y_label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("  {y_label:>12} |"));
    for x in &s.xs {
        out.push_str(&format!(" p={x:<7}"));
    }
    out.push('\n');
    for (i, y) in s.ys.iter().enumerate() {
        if *y > 1e6 {
            out.push_str(&format!("  {y:>12.3e} |"));
        } else {
            out.push_str(&format!("  {y:>12.0} |"));
        }
        for j in 0..s.xs.len() {
            out.push_str(&format!(" {:<8.4}", s.at(i, j)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{AppModel, FtModel};
    use crate::scaling::ee_surface_pf;
    use crate::validate::{ValidationPoint, ValidationSummary};

    #[test]
    fn machine_table_mentions_all_parameters() {
        let t = machine_table(&MachineParams::system_g(2.8e9));
        for needle in ["tc", "tm", "ts", "tw", "P_sys_idle", "dPc", "dPm", "gamma"] {
            assert!(t.contains(needle), "missing {needle}:\n{t}");
        }
    }

    #[test]
    fn app_table_shows_signed_overheads() {
        let a = FtModel::system_g().app_params(1e6, 16);
        let t = app_table(&a);
        assert!(t.contains("Wom"));
        assert!(t.contains('-'), "negative Wom should render signed:\n{t}");
    }

    #[test]
    fn validation_table_includes_statistics() {
        let s = ValidationSummary {
            name: "FT".into(),
            points: vec![ValidationPoint {
                p: 4,
                predicted_j: simcluster::units::Joules::new(95.0),
                measured_j: simcluster::units::Joules::new(100.0),
            }],
        };
        let t = validation_table(&s);
        assert!(t.contains("FT"));
        assert!(t.contains("-5.00%"));
        assert!(t.contains("mean |error| = 5.00%"));
    }

    #[test]
    fn surface_table_has_rows_and_columns() {
        let ft = FtModel::system_g();
        let m = MachineParams::system_g(2.8e9);
        let s = ee_surface_pf(&ft, &m, 1e6, &[1, 16], &[1.6e9, 2.8e9]).expect("sweep ok");
        let t = surface_table(&s, "f (Hz)");
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("p=1"));
        assert!(t.contains("p=16"));
    }
}
