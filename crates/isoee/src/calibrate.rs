//! The §IV.B calibration pipeline.
//!
//! * Machine parameters come from the microbenchmark suite (Perfmon CPI →
//!   `tc`, `lat_mem_rd` plateau → `tm`, MPPTest fit → `ts`/`tw`, PowerPack
//!   deltas → `ΔPc`/`ΔPm`/idle) — [`measured_machine_params`].
//! * Application parameters come from instrumented runs: sequential
//!   counters give `Wc`/`Wm`, the parallel-minus-sequential difference
//!   gives `Woc`/`Wom`, and the parallel run's message counters give
//!   `M`/`B` (the paper's Perfmon + TAU methodology) —
//!   [`measure_app_params`].
//! * The overlap factor `α` is measured as actual over theoretical time
//!   (§VI.F) — [`measure_alpha`].

use mps::{run, Counters, Ctx, RunReport, World};
use simcluster::units::{Joules, Seconds};
use simcluster::SegmentKind;

use crate::params::{AppParams, MachineParams};

/// One instrumented run's distilled measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMeasurement {
    /// Ranks used.
    pub p: usize,
    /// All-processor counter totals.
    pub counters: Counters,
    /// PowerPack-measured total energy.
    pub energy_j: Joules,
    /// Parallel span `Tp`, seconds.
    pub span_s: f64,
    /// Measured overlap factor of the run.
    pub alpha: f64,
}

/// Run `kernel` on `p` ranks and distill the measurement.
pub fn measure_run<R, F>(world: &World, p: usize, kernel: F) -> RunMeasurement
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    let report = run(world, p, kernel);
    distill(world, &report)
}

/// Distill an existing run report.
pub fn distill<R>(world: &World, report: &RunReport<R>) -> RunMeasurement {
    let counters = report.total_counters();
    let energy = report.energy(world).total();
    RunMeasurement {
        p: report.ranks.len(),
        counters,
        energy_j: energy,
        span_s: report.span(),
        alpha: alpha_of(report),
    }
}

/// Measured overlap factor: total *wall* time of work segments over total
/// device-busy time (§VI.F's actual/theoretical ratio), aggregated across
/// ranks. Waits are excluded on both sides.
pub fn alpha_of<R>(report: &RunReport<R>) -> f64 {
    let kinds = [
        SegmentKind::Compute,
        SegmentKind::Memory,
        SegmentKind::Network,
        SegmentKind::Io,
    ];
    let mut wall = 0.0;
    let mut work = 0.0;
    for rk in &report.ranks {
        for k in kinds {
            wall += rk.log.wall_time(k);
            work += rk.log.work_time(k);
        }
    }
    if work > 0.0 {
        wall / work
    } else {
        1.0
    }
}

/// Measure α for a kernel on `world` (convenience wrapper).
pub fn measure_alpha<R, F>(world: &World, p: usize, kernel: F) -> f64
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    alpha_of(&run(world, p, kernel))
}

/// Build the Table-2 vector for a specific `(kernel, p)` from a sequential
/// baseline and a parallel run:
///
/// ```text
/// Wc = Wc(1)          Woc = Wc(p) − Wc(1)
/// Wm = Wm(1)          Wom = Wm(p) − Wm(1)
/// M, B  from the parallel run      α from the sequential run
/// ```
pub fn app_params_from(seq: &RunMeasurement, par: &RunMeasurement) -> AppParams {
    assert_eq!(seq.p, 1, "baseline must be sequential");
    let a = AppParams::from_raw(
        seq.alpha,
        seq.counters.wc,
        seq.counters.wm,
        par.counters.wc - seq.counters.wc,
        par.counters.wm - seq.counters.wm,
        par.counters.messages,
        par.counters.bytes,
        seq.counters.io_s,
    );
    a.validate();
    a
}

/// Measure the Table-2 vector for `kernel` at parallelism `p` (runs the
/// sequential baseline too; for many `p` values, measure the baseline once
/// and use [`app_params_from`]).
pub fn measure_app_params<R, F>(world: &World, p: usize, kernel: F) -> AppParams
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    let seq = measure_run(world, 1, &kernel);
    let par = if p == 1 {
        seq
    } else {
        measure_run(world, p, &kernel)
    };
    app_params_from(&seq, &par)
}

/// Derive the Table-1 machine vector by *measurement* (the paper's tool
/// chain), not by reading the spec. `γ` and the NIC/disk deltas are taken
/// from the specification — PowerPack derives γ by fitting `ΔPc` across
/// DVFS states, which [`crate::params::MachineParams::at_frequency`] then
/// reproduces exactly.
pub fn measured_machine_params(world: &World) -> MachineParams {
    let cpi = microbench::perfmon_cpi(world, 1e7);
    let sweep = microbench::lat_mem_rd(world, 1 << 12, 1 << 28);
    let tm = microbench::lmbench::tm_from_sweep(&sweep);
    let hock = microbench::mpptest(world, &microbench::mpptest::default_sizes(), 2);
    let pd = microbench::power_deltas(world);
    let node = &world.cluster.node;
    MachineParams {
        tc: Seconds::new(cpi.tc_s),
        tm: Seconds::new(tm),
        ts: Seconds::new(hock.ts),
        tw: Seconds::new(hock.tw),
        p_sys_idle: pd.idle_w,
        delta_pc: pd.delta_cpu_w,
        delta_pm: pd.delta_mem_w,
        delta_pnic: node.nic.delta(),
        delta_pio: node.disk.delta(),
        f_hz: world.f_hz,
        f_ref_hz: node.cpu.dvfs.nominal(),
        gamma: node.cpu.delta.gamma,
        cpi: cpi.cpi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::system_g;
    use simcluster::units::Messages;

    fn world() -> World {
        World::new(system_g(), 2.8e9)
    }

    #[test]
    fn measured_machine_params_match_spec_closely() {
        let w = world();
        let measured = measured_machine_params(&w);
        let truth = MachineParams::from_spec(&w.cluster, 2.8e9);
        let close = |a: f64, b: f64, tol: f64, what: &str| {
            assert!((a - b).abs() / b.abs() < tol, "{what}: {a} vs {b}");
        };
        close(measured.tc.raw(), truth.tc.raw(), 1e-6, "tc");
        close(measured.ts.raw(), truth.ts.raw(), 0.02, "ts");
        close(measured.tw.raw(), truth.tw.raw(), 0.02, "tw");
        close(
            measured.delta_pc.raw(),
            truth.delta_pc.raw(),
            1e-3,
            "delta_pc",
        );
        close(
            measured.delta_pm.raw(),
            truth.delta_pm.raw(),
            1e-3,
            "delta_pm",
        );
        assert_eq!(measured.p_sys_idle, truth.p_sys_idle);
        // tm: the lat_mem_rd plateau slightly underestimates pure DRAM
        // latency (blend includes the cached head of the staircase).
        close(measured.tm.raw(), truth.tm.raw(), 0.05, "tm");
    }

    #[test]
    fn measured_alpha_matches_configured_alpha() {
        let w = world().with_alpha(0.83);
        let a = measure_alpha(&w, 2, |ctx: &mut Ctx| {
            ctx.compute(1e6);
            ctx.mem_access(1e5, 1 << 26);
            ctx.barrier();
        });
        assert!((a - 0.83).abs() < 1e-9, "alpha {a}");
    }

    #[test]
    fn app_params_difference_logic() {
        let w = world();
        let kernel = |ctx: &mut Ctx| {
            // Fixed per-rank work: parallel totals exceed sequential.
            ctx.compute(1e6);
            if ctx.size() > 1 {
                ctx.barrier();
            }
        };
        let seq = measure_run(&w, 1, kernel);
        let par = measure_run(&w, 4, kernel);
        let app = app_params_from(&seq, &par);
        assert_eq!(app.wc.raw(), 1e6);
        assert!((app.woc.raw() - 3e6).abs() < 1.0, "woc {}", app.woc);
        assert!(app.messages > Messages::ZERO, "barrier messages counted");
    }

    #[test]
    #[should_panic(expected = "baseline must be sequential")]
    fn app_params_rejects_parallel_baseline() {
        let w = world();
        let a = measure_run(&w, 2, |ctx: &mut Ctx| ctx.compute(1.0));
        let b = measure_run(&w, 4, |ctx: &mut Ctx| ctx.compute(1.0));
        app_params_from(&a, &b);
    }
}
