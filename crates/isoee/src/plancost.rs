//! Static cost/energy pass for `plan` analyses: lower a [`PlanAnalysis`]
//! to the iso-energy model's communication terms and a full
//! [`ModelEnclosure`].
//!
//! The pass converts the analyzer's exact message/byte totals and its
//! compute/memory accumulators into an [`AppBox`] and
//! evaluates Eq. 13/15 over it. Message and byte counts are exact (the
//! abstract run emits precisely the messages a lowered execution sends),
//! so `T_comm` and `E_comm` are point intervals; the off-chip workload
//! `Wm` is a genuine interval `[0, mem_accesses]` because the dynamic
//! cache split may classify any fraction of the charged accesses as
//! on-chip hits.

use plan::PlanAnalysis;

use crate::interval::{self, AppBox, Interval, MachBox, ModelEnclosure};

/// Static cost bounds for one analyzed plan on one machine box.
#[derive(Debug, Clone, Copy)]
pub struct PlanCost {
    /// Total messages across ranks (exact).
    pub messages: u64,
    /// Total bytes across ranks (exact).
    pub bytes: u64,
    /// Total on-chip instructions across ranks (exact for plans whose
    /// `Compute` charges are themselves exact).
    pub wc: f64,
    /// Total charged memory accesses across ranks (upper bound on off-chip
    /// accesses).
    pub mem_accesses: f64,
    /// Enclosure of the Hockney communication time `M·ts + B·tw`
    /// (Eq. 13's network term).
    pub t_comm: Interval,
    /// Enclosure of the network energy `T_comm · ΔP_NIC` (Eq. 15's NIC
    /// term).
    pub e_comm: Interval,
    /// Full-model enclosure (`T1`, `Tp`, `E1`, `Ep`, `EEF`, `EE`) with the
    /// plan's totals as the application vector at parallelism
    /// [`PlanAnalysis::p`].
    pub enclosure: ModelEnclosure,
}

/// The application box a [`PlanAnalysis`] induces: exact comm totals,
/// exact `Wc`, and `Wm ∈ [0, mem_accesses]`.
#[must_use]
pub fn app_box(analysis: &PlanAnalysis) -> AppBox {
    #[allow(clippy::cast_precision_loss)]
    AppBox {
        alpha: Interval::point(1.0),
        wc: Interval::point(analysis.total.wc),
        wm: Interval::new(0.0, analysis.total.mem_accesses),
        woc: Interval::point(0.0),
        wom: Interval::point(0.0),
        messages: Interval::point(analysis.total.messages as f64),
        bytes: Interval::point(analysis.total.bytes as f64),
        t_io: Interval::point(0.0),
    }
}

/// Evaluate the static cost/energy bounds of an analyzed plan on `mach`.
#[must_use]
pub fn cost_bounds(analysis: &PlanAnalysis, mach: &MachBox) -> PlanCost {
    let a = app_box(analysis);
    let t_comm = interval::t_net_of(mach, a.messages, a.bytes);
    let e_comm = interval::e_net_of(mach, a.messages, a.bytes);
    let enclosure = interval::evaluate(mach, &a, analysis.p);
    PlanCost {
        messages: analysis.total.messages,
        bytes: analysis.total.bytes,
        wc: analysis.total.wc,
        mem_accesses: analysis.total.mem_accesses,
        t_comm,
        e_comm,
        enclosure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MachineParams;
    use plan::{analyze_plan, CommPlan, Expr, Op, TagExpr};

    fn mach() -> MachBox {
        MachBox::from_params(&MachineParams::system_g(2.8e9))
    }

    #[test]
    fn t_comm_matches_the_model_t_net_term() {
        // Ring of 256-byte messages: p messages, 256p bytes total.
        let plan = CommPlan::new(
            "ring",
            vec![
                Op::Compute {
                    units: Expr::Const(1000),
                    scale: 2.0,
                },
                Op::MemStream {
                    elems: Expr::Const(800),
                    scale: 1.0,
                    ws: Expr::Const(1 << 16),
                },
                Op::Send {
                    to: (Expr::Rank + Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                    bytes: Expr::Const(256),
                },
                Op::Recv {
                    from: (Expr::Rank + Expr::P - Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                },
            ],
        );
        let p = 8;
        let analysis = analyze_plan(&plan, p);
        assert!(analysis.clean(), "{:?}", analysis.findings);
        let m = mach();
        let cost = cost_bounds(&analysis, &m);

        assert_eq!(cost.messages, p as u64);
        assert_eq!(cost.bytes, 256 * p as u64);
        // Exact totals -> point comm enclosures equal to the model's own
        // t_net over the equivalent AppBox.
        let a = app_box(&analysis);
        let expected = crate::interval::t_net(&m, &a);
        assert_eq!(cost.t_comm, expected);
        assert_eq!(cost.e_comm, expected * m.delta_pnic);
        // Exact counts: the enclosure is tight up to outward rounding.
        assert!(cost.t_comm.lo > 0.0);
        assert!((cost.t_comm.hi - cost.t_comm.lo) / cost.t_comm.lo < 1e-12);

        // Wc: 1000 · 2.0 per rank; mem: 800 / 8 accesses per rank.
        assert!((cost.wc - 2000.0 * p as f64).abs() < 1e-9);
        assert!((cost.mem_accesses - 100.0 * p as f64).abs() < 1e-9);
    }

    #[test]
    fn enclosure_agrees_with_interval_evaluate_and_certifies() {
        let plan = CommPlan::new(
            "work",
            vec![
                Op::Compute {
                    units: Expr::Const(1_000_000),
                    scale: 1.0,
                },
                Op::AllReduce {
                    elems: Expr::Const(64),
                    op: plan::ReduceOp::Sum,
                },
            ],
        );
        let analysis = analyze_plan(&plan, 4);
        assert!(analysis.clean());
        let m = mach();
        let cost = cost_bounds(&analysis, &m);
        let direct = crate::interval::evaluate(&m, &app_box(&analysis), 4);
        assert_eq!(cost.enclosure.ep, direct.ep);
        assert_eq!(cost.enclosure.t1, direct.t1);
        assert!(cost.enclosure.baseline_certified());
        // Ep must dominate the pure network energy term (Eq. 15 sums it
        // with non-negative compute/memory/idle terms).
        assert!(cost.enclosure.ep.lo >= cost.e_comm.lo);
    }
}
