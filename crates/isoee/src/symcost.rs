//! Closed-form cost/energy lowering of parametric plan certificates, and
//! static power-cap verdicts.
//!
//! Where [`crate::plancost`] lowers one *concrete* [`plan::PlanAnalysis`]
//! (a single `p`) to Eq. 13/15 enclosures, this module lowers a
//! [`ParametricCert`] — the `plan::symbolic` certifier's for-all-`p`
//! artifact — so the model can be evaluated at **any** admissible `p`
//! from the certificate's polynomial-in-`p` count enclosures alone, in
//! `O(plan size)` per point with no rank matrix or abstract run.
//!
//! On top of that sits [`power_cap_verdict`]: a static decision of
//! "plan × machine box never draws more than `cap` watts of average
//! power for any `p` in the declared domain". Bounded domains are decided
//! by exhaustive enclosure evaluation (still milliseconds — each point is
//! a closed-form formula). Unbounded domains are decided by the
//! **idle-floor lemma**: Eq. 15's `Ep` includes the term
//! `Tp · p · P_sys_idle` and every other summand is non-negative, so
//! average power `Ep/Tp ≥ p · P_sys_idle.lo` — for any positive idle
//! floor there is a `p` beyond which *every* plan busts the cap, and the
//! verdict names the violating range.

use plan::{ParametricCert, SymCounts};

use crate::interval::{self, AppBox, Interval, MachBox, ModelEnclosure};

/// Symbolic cost/energy bounds for one certified plan at one admissible
/// `p`, derived from the certificate's count enclosures.
#[derive(Debug, Clone, Copy)]
pub struct SymPlanCost {
    /// The world size evaluated at.
    pub p: u64,
    /// Total messages across ranks (enclosure).
    pub messages: Interval,
    /// Total bytes across ranks (enclosure).
    pub bytes: Interval,
    /// Enclosure of the Hockney communication time `M·ts + B·tw`.
    pub t_comm: Interval,
    /// Enclosure of the network energy `T_comm · ΔP_NIC`.
    pub e_comm: Interval,
    /// Full-model enclosure (`T1`, `Tp`, `E1`, `Ep`, `EEF`, `EE`).
    pub enclosure: ModelEnclosure,
}

/// The application box a certificate's count enclosures induce at one
/// `p`: interval comm totals and `Wc`, with `Wm ∈ [0, mem_accesses.hi]`
/// (the dynamic cache split may classify any fraction of the charged
/// accesses as on-chip hits).
#[must_use]
pub fn sym_app_box(counts: &SymCounts) -> AppBox {
    AppBox {
        alpha: Interval::point(1.0),
        wc: Interval::new(counts.wc.lo, counts.wc.hi),
        wm: Interval::new(0.0, counts.mem_accesses.hi),
        woc: Interval::point(0.0),
        wom: Interval::point(0.0),
        messages: Interval::new(counts.messages.lo, counts.messages.hi),
        bytes: Interval::new(counts.bytes.lo, counts.bytes.hi),
        t_io: Interval::point(0.0),
    }
}

/// Evaluate the certificate's cost/energy bounds at `p` on `mach`.
///
/// Returns `None` when the certificate is not certified, `p` is outside
/// its domain, `p` does not fit the model's `usize` parallelism, or the
/// count enclosure fails to evaluate at this `p`.
#[must_use]
pub fn sym_cost_bounds(cert: &ParametricCert, p: u64, mach: &MachBox) -> Option<SymPlanCost> {
    let counts = cert.counts(p)?;
    let pu = usize::try_from(p).ok()?;
    let a = sym_app_box(&counts);
    let t_comm = interval::t_net_of(mach, a.messages, a.bytes);
    let e_comm = interval::e_net_of(mach, a.messages, a.bytes);
    let enclosure = interval::evaluate(mach, &a, pu);
    Some(SymPlanCost {
        p,
        messages: a.messages,
        bytes: a.bytes,
        t_comm,
        e_comm,
        enclosure,
    })
}

/// The static for-all-`p` power-cap decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PowerCapVerdict {
    /// Provably under the cap at every admissible `p`: the average-power
    /// *upper* bound `Ep.hi / Tp.lo` stays `≤ cap` across the whole
    /// (necessarily bounded) domain.
    AcceptedForAll {
        /// How many admissible world sizes were enclosed.
        ps_checked: usize,
    },
    /// Provably over the cap: the average-power *lower* bound exceeds the
    /// cap on `[from_p, to_p]` (`to_p = None` means "and every larger
    /// admissible `p`", the unbounded-domain idle-floor tail).
    Rejected {
        /// First admissible `p` with a proven violation.
        from_p: u64,
        /// Last admissible `p` with a proven violation, if the violating
        /// range is bounded.
        to_p: Option<u64>,
    },
    /// The enclosure straddles the cap at `at_p`: neither side provable.
    Undecided {
        /// The first admissible `p` the decision failed at.
        at_p: u64,
    },
    /// The certificate is not certified — no for-all-`p` claim exists.
    Uncertified,
}

impl PowerCapVerdict {
    /// Whether the verdict proves the cap is respected for all `p`.
    #[must_use]
    pub fn accepted(&self) -> bool {
        matches!(self, PowerCapVerdict::AcceptedForAll { .. })
    }
}

/// Decide statically whether `cert`'s plan on `mach` can ever exceed an
/// average power draw of `cap_watts`, for any `p` in the certified
/// domain.
#[must_use]
pub fn power_cap_verdict(cert: &ParametricCert, mach: &MachBox, cap_watts: f64) -> PowerCapVerdict {
    if !cert.certified {
        return PowerCapVerdict::Uncertified;
    }

    let Some(ps) = cert.domain.admissible() else {
        return unbounded_verdict(cert, mach, cap_watts);
    };

    // Scan the whole domain before deciding: one *proven* violation
    // anywhere refutes the for-all claim even if the enclosure merely
    // straddles the cap at other points.
    let mut violating: Option<(u64, u64)> = None;
    let mut undecided: Option<u64> = None;
    for &p in &ps {
        match avg_power_bounds(cert, mach, p) {
            Some((lo, _)) if lo > cap_watts => match &mut violating {
                None => violating = Some((p, p)),
                Some((_, to)) => *to = p,
            },
            Some((_, hi)) if hi <= cap_watts => {}
            _ => undecided = undecided.or(Some(p)),
        }
    }
    match (violating, undecided) {
        (Some((from_p, to_p)), _) => PowerCapVerdict::Rejected {
            from_p,
            to_p: Some(to_p),
        },
        (None, Some(at_p)) => PowerCapVerdict::Undecided { at_p },
        (None, None) => PowerCapVerdict::AcceptedForAll {
            ps_checked: ps.len(),
        },
    }
}

/// Average-power enclosure `Ep / Tp` at `p`, as `(lo, hi)`.
fn avg_power_bounds(cert: &ParametricCert, mach: &MachBox, p: u64) -> Option<(f64, f64)> {
    let cost = sym_cost_bounds(cert, p, mach)?;
    let ep = cost.enclosure.ep;
    let tp = cost.enclosure.tp;
    if !(tp.lo > 0.0 && ep.lo >= 0.0 && ep.hi.is_finite() && tp.hi.is_finite()) {
        return None;
    }
    Some((ep.lo / tp.hi, ep.hi / tp.lo))
}

/// The idle-floor rejection for unbounded domains: `Ep/Tp ≥ p ·
/// P_sys_idle.lo`, so once `p > cap / P_sys_idle.lo` the cap is busted at
/// every larger admissible `p`.
fn unbounded_verdict(cert: &ParametricCert, mach: &MachBox, cap_watts: f64) -> PowerCapVerdict {
    let idle = mach.p_sys_idle.lo;
    let min_p = cert.domain.min_p();
    if idle <= 0.0 {
        return PowerCapVerdict::Undecided { at_p: min_p };
    }
    // Smallest admissible p with p · idle > cap. floor(cap/idle) + 1 is
    // the first integer over the threshold; round up to the domain.
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let threshold = ((cap_watts / idle).floor().max(0.0) as u64).saturating_add(1);
    let candidate = threshold.max(min_p);
    let from_p = match &cert.domain {
        plan::Domain::Pow2 { .. } => candidate.next_power_of_two(),
        plan::Domain::Any { .. } => candidate,
    };
    debug_assert!(cert.domain.contains(from_p));
    PowerCapVerdict::Rejected { from_p, to_p: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MachineParams;
    use crate::plancost;
    use plan::{analyze_plan, certify_plan, CommPlan, Domain, Expr, Op, TagExpr};

    fn mach() -> MachBox {
        MachBox::from_params(&MachineParams::system_g(2.8e9))
    }

    fn ring(bytes: i64) -> CommPlan {
        CommPlan::new(
            "ring",
            vec![
                Op::Compute {
                    units: Expr::Const(1_000_000),
                    scale: 1.0,
                },
                Op::MemStream {
                    elems: Expr::Const(8192),
                    scale: 1.0,
                    ws: Expr::Const(1 << 16),
                },
                Op::Send {
                    to: (Expr::Rank + Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                    bytes: Expr::Const(bytes),
                },
                Op::Recv {
                    from: (Expr::Rank + Expr::P - Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                },
            ],
        )
    }

    #[test]
    fn symbolic_bounds_contain_concrete_plancost() {
        let plan = ring(4096);
        let cert = certify_plan(&plan, &Domain::between(2, 512));
        assert!(cert.certified, "{:?}", cert.failure);
        let m = mach();
        for p in [2usize, 7, 64, 333, 512] {
            let concrete = plancost::cost_bounds(&analyze_plan(&plan, p), &m);
            let sym = sym_cost_bounds(&cert, p as u64, &m).expect("in domain");
            #[allow(clippy::cast_precision_loss)]
            {
                assert!(sym.messages.contains(concrete.messages as f64), "p={p}");
                assert!(sym.bytes.contains(concrete.bytes as f64), "p={p}");
            }
            assert!(sym.t_comm.lo <= concrete.t_comm.lo, "p={p}");
            assert!(sym.t_comm.hi >= concrete.t_comm.hi, "p={p}");
            assert!(sym.enclosure.ep.lo <= concrete.enclosure.ep.lo, "p={p}");
            assert!(sym.enclosure.ep.hi >= concrete.enclosure.ep.hi, "p={p}");
            assert!(sym.enclosure.tp.lo <= concrete.enclosure.tp.lo, "p={p}");
            assert!(sym.enclosure.tp.hi >= concrete.enclosure.tp.hi, "p={p}");
        }
    }

    #[test]
    fn outside_domain_or_uncertified_is_none() {
        let plan = ring(64);
        let cert = certify_plan(&plan, &Domain::between(2, 16));
        assert!(sym_cost_bounds(&cert, 17, &mach()).is_none());
        let bad = certify_plan(&plan, &Domain::at_least(1)); // p=1 self-send
        assert!(!bad.certified);
        assert!(sym_cost_bounds(&bad, 4, &mach()).is_none());
        assert_eq!(
            power_cap_verdict(&bad, &mach(), 1e9),
            PowerCapVerdict::Uncertified
        );
    }

    #[test]
    fn generous_cap_accepts_and_sampling_confirms() {
        let plan = ring(256);
        let cert = certify_plan(&plan, &Domain::between(2, 64));
        assert!(cert.certified);
        let m = mach();
        // Worst admissible p is 64; its upper power bound plus slack.
        let worst = sym_cost_bounds(&cert, 64, &m).expect("bounds");
        let cap = (worst.enclosure.ep.hi / worst.enclosure.tp.lo) * 2.0;
        let v = power_cap_verdict(&cert, &m, cap);
        assert!(v.accepted(), "{v:?}");
        assert_eq!(v, PowerCapVerdict::AcceptedForAll { ps_checked: 63 });
        // Concrete sampling must agree everywhere.
        for p in 2..=64usize {
            let c = plancost::cost_bounds(&analyze_plan(&plan, p), &m);
            assert!(c.enclosure.ep.hi / c.enclosure.tp.lo <= cap, "p={p}");
        }
    }

    #[test]
    fn tight_cap_rejects_with_violating_range() {
        let plan = ring(256);
        let m = mach();
        let cert = certify_plan(&plan, &Domain::between(2, 256));
        // The per-rank idle floor alone makes ~p · P_sys_idle.lo watts a
        // hard lower bound, so a cap of 64 · idle is provably busted for
        // a tail of the domain.
        let cap = 64.0 * m.p_sys_idle.lo;
        match power_cap_verdict(&cert, &m, cap) {
            PowerCapVerdict::Rejected { from_p, to_p } => {
                assert!(from_p <= 128, "idle floor alone violates well before p=128");
                assert_eq!(to_p, Some(256), "violation persists to the domain max");
                // The named start really is a proven violation, and its
                // predecessor (if admissible) was not.
                let (lo, _) = avg_power_bounds(&cert, &m, from_p).expect("bounds");
                assert!(lo > cap);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_domain_rejects_by_idle_floor() {
        let plan = ring(64);
        let m = mach();
        let cert = certify_plan(&plan, &Domain::at_least(2));
        let cap = 2000.0;
        match power_cap_verdict(&cert, &m, cap) {
            PowerCapVerdict::Rejected { from_p, to_p } => {
                assert_eq!(to_p, None, "tail rejection is open-ended");
                // from_p is the first integer with p · idle > cap…
                #[allow(clippy::cast_precision_loss)]
                {
                    assert!(from_p as f64 * m.p_sys_idle.lo > cap);
                    assert!((from_p - 1) as f64 * m.p_sys_idle.lo <= cap);
                }
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }
}
