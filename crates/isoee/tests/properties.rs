//! Property-based tests for the analytical model: structural invariants of
//! Eqs. 1–21 over random parameter vectors.

use isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use isoee::scaling::iso_ee_workload;
use isoee::{model, AppParams, MachineParams};
use proptest::prelude::*;
use simcluster::units::{Accesses, Bytes, Instructions, Joules, Messages, Seconds, Watts};

fn arb_app() -> impl Strategy<Value = AppParams> {
    (
        0.5f64..=1.0, // alpha
        1e6f64..1e12, // wc
        0.0f64..1e10, // wm
        0.0f64..1e10, // woc
        -0.5f64..1.0, // wom as a fraction of wm
        0.0f64..1e7,  // messages
        0.0f64..1e11, // bytes
    )
        .prop_map(|(alpha, wc, wm, woc, wom_frac, messages, bytes)| {
            AppParams::from_raw(alpha, wc, wm, woc, wom_frac * wm, messages, bytes, 0.0)
        })
}

fn mach() -> MachineParams {
    MachineParams::system_g(2.8e9)
}

/// `EE` as a plain value; every random vector drawn here has `Wc > 0`, so
/// the baseline energy is strictly positive and the model cannot error.
fn ee(m: &MachineParams, a: &AppParams, p: usize) -> f64 {
    model::ee(m, a, p).expect("baseline energy is positive")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn energies_are_positive_and_consistent(a in arb_app(), p in 1usize..2048) {
        let m = mach();
        let e1 = model::e1(&m, &a);
        let ep = model::ep(&m, &a, p);
        prop_assert!(e1 > Joules::ZERO);
        prop_assert!(ep > Joules::ZERO);
        // Definitional identities (Eqs. 1, 19, 21).
        let e0 = model::e0(&m, &a, p);
        let tol = Joules::new(1e-9 * ep.raw().abs().max(1.0));
        prop_assert!((e0 - (ep - e1)).abs() <= tol);
        let eef = model::eef(&m, &a, p).expect("baseline energy is positive");
        prop_assert!((eef - e0 / e1).abs() <= 1e-12 * eef.abs().max(1.0));
        let ee = ee(&m, &a, p);
        prop_assert!((ee - 1.0 / (1.0 + eef)).abs() <= 1e-12);
    }

    #[test]
    fn zero_overhead_app_is_ideal(
        alpha in 0.5f64..=1.0,
        wc in 1e6f64..1e12,
        wm in 0.0f64..1e10,
        p in 1usize..2048,
    ) {
        let m = mach();
        let a = AppParams::from_raw(alpha, wc, wm, 0.0, 0.0, 0.0, 0.0, 0.0);
        prop_assert!((ee(&m, &a, p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ee_monotone_decreasing_in_each_overhead(a in arb_app(), p in 2usize..1024) {
        let m = mach();
        let base = ee(&m, &a, p);
        for bump in [
            AppParams { woc: a.woc + Instructions::new(1e9), ..a },
            AppParams { wom: a.wom + Accesses::new(1e8), ..a },
            AppParams { messages: a.messages + Messages::new(1e5), ..a },
            AppParams { bytes: a.bytes + Bytes::new(1e10), ..a },
        ] {
            let e = ee(&m, &bump, p);
            prop_assert!(e <= base + 1e-12, "overhead bump raised EE: {e} > {base}");
        }
    }

    #[test]
    fn tp_scales_inversely_with_p_for_fixed_totals(a in arb_app(), p in 1usize..1024) {
        let m = mach();
        let t1 = model::tp(&m, &a, p);
        let t2 = model::tp(&m, &a, 2 * p);
        prop_assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn at_frequency_roundtrips(f_pick in 0usize..4, a in arb_app(), p in 1usize..256) {
        let fs = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
        let m = mach();
        let there = m.at_frequency(fs[f_pick]);
        let back = there.at_frequency(2.8e9);
        prop_assert!((back.tc - m.tc).abs() < Seconds::new(1e-20));
        prop_assert!((back.delta_pc - m.delta_pc).abs() < Watts::new(1e-9));
        // EE computed after a frequency round trip is unchanged.
        let e0 = ee(&m, &a, p);
        let e1 = ee(&back, &a, p);
        prop_assert!((e0 - e1).abs() < 1e-9);
    }

    #[test]
    fn app_models_produce_valid_params(
        n_ft in 1e4f64..1e9,
        n_cg in 2e3f64..1e7,
        lg_p in 0u32..11,
    ) {
        let p = 1usize << lg_p;
        for a in [
            FtModel::system_g().app_params(n_ft, p),
            EpModel::system_g().app_params(n_ft, p),
            CgModel::system_g().app_params(n_cg, p),
        ] {
            a.validate(); // panics on violation
            prop_assert!(a.wc > Instructions::ZERO);
            prop_assert!(a.wm + a.wom >= Accesses::ZERO);
            let e = ee(&mach(), &a, p);
            prop_assert!(e.is_finite() && e > 0.0 && e < 1.5, "EE {e}");
        }
    }

    #[test]
    fn ee_of_app_models_monotone_in_n_at_scale(
        lg_p in 4u32..10,
        n_lo in 1e5f64..1e7,
    ) {
        // Figs. 6/8: for FT and CG at p >= 16, more workload never hurts.
        let p = 1usize << lg_p;
        let m = mach();
        let n_hi = n_lo * 4.0;
        let ft = FtModel::system_g();
        prop_assert!(
            ee(&m, &ft.app_params(n_hi, p), p)
                >= ee(&m, &ft.app_params(n_lo, p), p) - 1e-9
        );
        let cg = CgModel::system_g();
        let n_cg_lo = (n_lo / 100.0).max(2e3);
        prop_assert!(
            ee(&m, &cg.app_params(n_cg_lo * 4.0, p), p)
                >= ee(&m, &cg.app_params(n_cg_lo, p), p) - 1e-9
        );
    }
}

proptest! {
    // The bisection runs ~200 model evaluations per case.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn iso_ee_bisection_is_sound(
        lg_p in 3u32..10,
        target in 0.3f64..0.95,
    ) {
        let p = 1usize << lg_p;
        let m = mach();
        let ft = FtModel::system_g();
        if let Ok(Some(n)) = iso_ee_workload(&ft, &m, p, target, 1e3, 1e13) {
            let e = ee(&m, &ft.app_params(n, p), p);
            prop_assert!(e >= target - 1e-6, "EE({n}) = {e} < {target}");
        }
    }
}
