//! The schedule-space explorer: stateless DFS with sleep-set partial-order
//! reduction over the interleavings of an [`mps`] world.
//!
//! ## How a schedule is driven
//!
//! Every rank parks in [`SchedulerHook::permit`] before each point-to-point
//! effect (collectives are built from the same primitives, so they park
//! too). The hook fully serializes the world: exactly one rank holds a
//! grant at any moment, and the next decision is taken only at
//! *quiescence* — every rank parked or finished. The hook mirrors the
//! runtime's channel state (per-`(src, dst)` FIFOs of in-flight tags, with
//! the runtime's tag-skipping match rule), so it can tell which parked
//! operations are *enabled*:
//!
//! * a send is always enabled (sends are eager);
//! * `recv(from, tag)` is enabled iff a matching tag is in flight on
//!   `(from, self)`;
//! * `recv_any(tag)` contributes one enabled choice per source with a
//!   matching tag in flight — the wildcard branch point.
//!
//! A grant is only issued for an enabled operation, so a granted rank
//! never blocks inside the runtime: each run is a deterministic function
//! of its choice sequence ([`Choice`] list), which is what makes witnesses
//! replayable.
//!
//! ## What is reported
//!
//! * **Deadlock** — at quiescence, unfinished ranks exist and nothing is
//!   enabled. The witness is the exact schedule into the deadlocked state.
//! * **Tag race** — a `recv_any` with two or more enabled sources for the
//!   same tag: the matched source (and thus the received payload) depends
//!   on the schedule.
//! * **Delivery-order nondeterminism** — two completed schedules whose
//!   per-rank delivery sequences differ; both witnesses are reported.
//!
//! ## Reduction
//!
//! DFS over choice points with *sleep sets* (Godefroot's dynamic POR
//! baseline): after exploring choice `t` at a state, `t` is added to the
//! sleep set of sibling subtrees and stays asleep until a dependent
//! operation executes. Two choices are dependent iff they are by the same
//! rank or touch the same channel `(src, dst)` — wildcard matches take
//! their *granted* source's channel, so the wildcard branch point itself
//! is never pruned.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mps::{Ctx, RunError, SchedGrant, SchedOp, SchedulerHook, World};

/// How long a parked rank waits for the controller before declaring the
/// channel model divergent. Generous: a healthy decision takes
/// microseconds.
const STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// One granted scheduling decision: `rank` performed `op`; for a wildcard
/// receive, `source` is the matched sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// The rank that was granted.
    pub rank: usize,
    /// The operation it was parked on.
    pub op: SchedOp,
    /// The granted source (wildcard receives only).
    pub source: Option<usize>,
}

impl Choice {
    /// The directed channel `(src, dst)` this choice acts on.
    fn channel(&self) -> (usize, usize) {
        match self.op {
            SchedOp::Send { to, .. } => (self.rank, to),
            SchedOp::Recv { from, .. } => (from, self.rank),
            SchedOp::RecvAny { .. } => (
                self.source.expect("granted wildcard carries its source"),
                self.rank,
            ),
        }
    }

    /// Sleep-set independence: different ranks, disjoint channels.
    fn independent(&self, other: &Self) -> bool {
        self.rank != other.rank && self.channel() != other.channel()
    }
}

impl std::fmt::Display for Choice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.source {
            Some(s) => write!(f, "rank {}: {} <- rank {s}", self.rank, self.op),
            None => write!(f, "rank {}: {}", self.rank, self.op),
        }
    }
}

/// A schedule: the choice sequence that reproduces one explored execution.
pub type Schedule = Vec<Choice>;

/// A bug class surfaced by exploration, with its replayable witness.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyFinding {
    /// Unfinished ranks with no enabled operation: the schedule in
    /// `witness` drives the world into this state.
    Deadlock {
        /// The parked-and-stuck operations, by rank.
        blocked: Vec<(usize, SchedOp)>,
        /// Schedule into the deadlocked state.
        witness: Schedule,
    },
    /// A wildcard receive whose match depends on the schedule.
    TagRace {
        /// The receiving rank.
        rank: usize,
        /// The racing tag.
        tag: u64,
        /// Sources simultaneously able to match.
        sources: Vec<usize>,
        /// Schedule into the racing state (the wildcard is the *next*
        /// decision after this prefix).
        witness: Schedule,
    },
    /// Two completed schedules delivered messages in different per-rank
    /// orders.
    DeliveryOrderNondet {
        /// The first rank whose delivery sequence differs.
        rank: usize,
        /// One complete schedule.
        witness_a: Schedule,
        /// A second complete schedule with a different delivery order.
        witness_b: Schedule,
    },
}

impl std::fmt::Display for VerifyFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Deadlock { blocked, witness } => {
                write!(f, "deadlock after {} steps:", witness.len())?;
                for (rank, op) in blocked {
                    write!(f, " [rank {rank} stuck on {op}]")?;
                }
                Ok(())
            }
            Self::TagRace {
                rank,
                tag,
                sources,
                witness,
            } => write!(
                f,
                "tag race: rank {rank} recv_any(tag {tag}) matches any of {sources:?} \
                 after {} steps",
                witness.len()
            ),
            Self::DeliveryOrderNondet { rank, .. } => {
                write!(
                    f,
                    "delivery-order nondeterminism first visible at rank {rank}"
                )
            }
        }
    }
}

/// What one directed execution did.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RunOutcome {
    /// All ranks finished.
    Terminal,
    /// Quiescent with unfinished ranks and nothing enabled.
    Deadlock {
        /// The stuck operations.
        blocked: Vec<(usize, SchedOp)>,
    },
    /// Step budget exhausted; the run was aborted.
    DepthExceeded,
    /// A directed prefix choice was not enabled at its state (replaying a
    /// schedule against a different program or world).
    Diverged {
        /// Index of the prefix choice that could not be granted.
        at: usize,
    },
}

/// One decision point of an execution: what was enabled, what was chosen.
#[derive(Debug, Clone)]
pub(crate) struct StepRecord {
    pub enabled: Vec<Choice>,
    pub chosen: Choice,
}

#[derive(Debug)]
struct ControllerState {
    p: usize,
    /// Ranks currently executing user code (not parked, not finished).
    running: usize,
    finished: usize,
    parked: BTreeMap<usize, SchedOp>,
    grants: BTreeMap<usize, SchedGrant>,
    /// In-flight tags per directed channel, in send order.
    channels: BTreeMap<(usize, usize), VecDeque<u64>>,
    /// Directed prefix to follow before the default policy takes over.
    prefix: Vec<Choice>,
    pos: usize,
    steps: Vec<StepRecord>,
    /// Delivery log: `(receiver, source, tag)` in grant order.
    deliveries: Vec<(usize, usize, u64)>,
    outcome: Option<RunOutcome>,
    aborting: bool,
    max_depth: usize,
}

impl ControllerState {
    fn channel_has(&self, src: usize, dst: usize, tag: u64) -> bool {
        self.channels
            .get(&(src, dst))
            .is_some_and(|q| q.contains(&tag))
    }

    /// Enabled choices at the current quiescent state, in deterministic
    /// (rank, source) order.
    fn enabled(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for (&rank, &op) in &self.parked {
            match op {
                SchedOp::Send { .. } => out.push(Choice {
                    rank,
                    op,
                    source: None,
                }),
                SchedOp::Recv { from, tag } => {
                    if self.channel_has(from, rank, tag) {
                        out.push(Choice {
                            rank,
                            op,
                            source: None,
                        });
                    }
                }
                SchedOp::RecvAny { tag } => {
                    for src in 0..self.p {
                        if src != rank && self.channel_has(src, rank, tag) {
                            out.push(Choice {
                                rank,
                                op,
                                source: Some(src),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Apply the runtime effect of a granted choice to the channel model
    /// (tag-skipping first-match removal, mirroring `mps`'s pending-buffer
    /// semantics).
    fn apply(&mut self, choice: &Choice) {
        match choice.op {
            SchedOp::Send { to, tag } => {
                self.channels
                    .entry((choice.rank, to))
                    .or_default()
                    .push_back(tag);
            }
            SchedOp::Recv { from, tag } => {
                self.take_in_flight(from, choice.rank, tag);
                self.deliveries.push((choice.rank, from, tag));
            }
            SchedOp::RecvAny { tag } => {
                let src = choice.source.expect("granted wildcard has a source");
                self.take_in_flight(src, choice.rank, tag);
                self.deliveries.push((choice.rank, src, tag));
            }
        }
    }

    fn take_in_flight(&mut self, src: usize, dst: usize, tag: u64) {
        let q = self
            .channels
            .get_mut(&(src, dst))
            .expect("granted receive had an in-flight message");
        let i = q
            .iter()
            .position(|&t| t == tag)
            .expect("granted receive had a matching tag");
        q.remove(i);
    }

    fn abort_all(&mut self) {
        self.aborting = true;
        let parked: Vec<usize> = self.parked.keys().copied().collect();
        for rank in parked {
            self.parked.remove(&rank);
            self.grants.insert(rank, SchedGrant::Abort);
        }
    }

    /// The controller: runs under the lock whenever the world may have
    /// gone quiescent, and issues at most one grant.
    fn decide(&mut self) {
        if self.aborting || self.running > 0 {
            return;
        }
        if self.finished == self.p {
            self.outcome.get_or_insert(RunOutcome::Terminal);
            return;
        }
        if self.parked.len() + self.finished < self.p {
            // A granted rank is between park points; not quiescent yet.
            return;
        }
        let enabled = self.enabled();
        let choice = if self.pos < self.prefix.len() {
            let want = self.prefix[self.pos];
            if !enabled.contains(&want) {
                self.outcome = Some(RunOutcome::Diverged { at: self.pos });
                self.abort_all();
                return;
            }
            self.pos += 1;
            want
        } else if enabled.is_empty() {
            let blocked: Vec<(usize, SchedOp)> =
                self.parked.iter().map(|(&r, &op)| (r, op)).collect();
            self.outcome = Some(RunOutcome::Deadlock { blocked });
            self.abort_all();
            return;
        } else if self.steps.len() >= self.max_depth {
            self.outcome = Some(RunOutcome::DepthExceeded);
            self.abort_all();
            return;
        } else {
            enabled[0]
        };
        self.steps.push(StepRecord {
            enabled,
            chosen: choice,
        });
        self.apply(&choice);
        self.parked.remove(&choice.rank);
        self.grants.insert(
            choice.rank,
            SchedGrant::Proceed {
                source: choice.source,
            },
        );
    }
}

/// The serializing scheduler hook: directs a prefix, then follows the
/// first-enabled default policy, recording every decision point.
#[derive(Debug)]
pub(crate) struct Controller {
    state: Mutex<ControllerState>,
    cv: Condvar,
}

impl Controller {
    pub(crate) fn new(p: usize, prefix: Vec<Choice>, max_depth: usize) -> Self {
        Self {
            state: Mutex::new(ControllerState {
                p,
                running: p,
                finished: 0,
                parked: BTreeMap::new(),
                grants: BTreeMap::new(),
                channels: BTreeMap::new(),
                prefix,
                pos: 0,
                steps: Vec::new(),
                deliveries: Vec::new(),
                outcome: None,
                aborting: false,
                max_depth,
            }),
            cv: Condvar::new(),
        }
    }

    /// Take the execution record out after the run returned.
    pub(crate) fn into_record(self) -> (Vec<StepRecord>, Vec<(usize, usize, u64)>, RunOutcome) {
        let st = self.state.into_inner().expect("controller lock intact");
        let outcome = st.outcome.unwrap_or(RunOutcome::Terminal);
        (st.steps, st.deliveries, outcome)
    }
}

impl SchedulerHook for Controller {
    fn permit(&self, rank: usize, op: SchedOp) -> SchedGrant {
        let mut st = self.state.lock().expect("controller lock intact");
        if st.aborting {
            return SchedGrant::Abort;
        }
        st.running -= 1;
        st.parked.insert(rank, op);
        st.decide();
        self.cv.notify_all();
        loop {
            if let Some(grant) = st.grants.remove(&rank) {
                if matches!(grant, SchedGrant::Proceed { .. }) {
                    st.running += 1;
                }
                return grant;
            }
            let (guard, timeout) = self
                .cv
                .wait_timeout(st, STALL_TIMEOUT)
                .expect("controller lock intact");
            st = guard;
            assert!(
                !timeout.timed_out(),
                "verify controller stalled: rank {rank} waited {STALL_TIMEOUT:?} on {op} \
                 (channel model diverged from the runtime?)"
            );
        }
    }

    fn rank_finished(&self, rank: usize) {
        let mut st = self.state.lock().expect("controller lock intact");
        let _ = rank;
        st.running -= 1;
        st.finished += 1;
        st.decide();
        self.cv.notify_all();
    }
}

/// Everything a directed execution produces: the per-step scheduling
/// record, the global delivery sequence `(source, dest, tag)`, how the
/// schedule ended, and the runtime's own run result.
pub(crate) type DirectedRun<R> = (
    Vec<StepRecord>,
    Vec<(usize, usize, u64)>,
    RunOutcome,
    Result<mps::RunReport<R>, RunError>,
);

/// One directed execution of `program` on a fresh copy of `world`, under
/// the given choice prefix and then the first-enabled default policy.
pub(crate) fn run_directed<R, F>(
    world: &World,
    p: usize,
    program: &F,
    prefix: &[Choice],
    max_depth: usize,
) -> DirectedRun<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    let controller = Arc::new(Controller::new(p, prefix.to_vec(), max_depth));
    let directed = world.clone().with_scheduler(controller.clone());
    let result = mps::try_run(&directed, p, program);
    drop(directed); // release the world's clone of the hook Arc
    let controller =
        Arc::into_inner(controller).expect("all rank threads joined, controller uniquely owned");
    let (steps, deliveries, outcome) = controller.into_record();
    (steps, deliveries, outcome, result)
}

/// Exploration bounds: how many distinct schedules to execute and how many
/// scheduling decisions a single schedule may take.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Maximum number of executed schedules before exploration truncates.
    pub max_schedules: usize,
    /// Maximum decisions per schedule (guards runaway programs).
    pub max_depth: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            max_schedules: 512,
            max_depth: 100_000,
        }
    }
}

/// The result of exploring a world's schedule space.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Distinct schedules actually executed.
    pub schedules: usize,
    /// True when a bound cut exploration short (findings remain sound;
    /// absence of findings is then *not* a proof).
    pub truncated: bool,
    /// Deduplicated findings, in discovery order.
    pub findings: Vec<VerifyFinding>,
}

impl Exploration {
    /// No findings and the schedule space was fully explored.
    #[must_use]
    pub fn certified(&self) -> bool {
        self.findings.is_empty() && !self.truncated
    }
}

/// A DFS node: the state reached after `chosen` prefixes up to this depth.
#[derive(Debug)]
struct Frame {
    enabled: Vec<Choice>,
    chosen: Choice,
    /// Alternatives already explored at this node.
    done: Vec<Choice>,
    /// Sleep set at this node.
    sleep: Vec<Choice>,
}

impl Frame {
    /// The next unexplored, non-sleeping alternative.
    fn next_alternative(&self) -> Option<Choice> {
        self.enabled
            .iter()
            .find(|c| !self.done.contains(c) && !self.sleep.contains(c))
            .copied()
    }

    /// Sleep set for the child reached by taking `choice` here.
    fn child_sleep(&self, choice: &Choice) -> Vec<Choice> {
        self.sleep
            .iter()
            .chain(self.done.iter())
            .filter(|u| u.independent(choice))
            .copied()
            .collect()
    }
}

impl Explorer {
    /// Explore the schedule space of `program` on `world` with `p` ranks.
    ///
    /// # Panics
    /// Panics if the controller and the runtime disagree about enabledness
    /// (a bug in the channel model, surfaced loudly rather than hung).
    pub fn explore<R, F>(&self, world: &World, p: usize, program: F) -> Exploration
    where
        R: Send,
        F: Fn(&mut Ctx) -> R + Sync,
    {
        self.explore_with(|prefix| {
            let (steps, deliveries, outcome, _result) =
                run_directed::<R, F>(world, p, &program, prefix, self.max_depth);
            (steps, deliveries, outcome)
        })
    }

    /// The DFS over schedule space, generic in *what executes* a directed
    /// schedule. `runner` receives the choice prefix and returns the
    /// scheduling observations of one complete run under it — the explorer
    /// only reasons about those observations, so any runtime that honors
    /// the [`mps::SchedulerHook`] protocol (the thread runtime, the simrt
    /// event engine) plugs in here and is verified by the same algorithm.
    fn explore_with(
        &self,
        mut runner: impl FnMut(&[Choice]) -> (Vec<StepRecord>, Vec<(usize, usize, u64)>, RunOutcome),
    ) -> Exploration {
        let mut stack: Vec<Frame> = Vec::new();
        let mut schedules = 0usize;
        let mut truncated = false;
        let mut findings: Vec<VerifyFinding> = Vec::new();
        let mut deadlock_sigs: Vec<Vec<(usize, SchedOp)>> = Vec::new();
        let mut race_sigs: Vec<(usize, u64)> = Vec::new();
        // per-rank delivery signature -> complete witness
        let mut terminals: Vec<(DeliverySig, Schedule)> = Vec::new();

        let mut pending: Option<usize> = Some(0); // depth at which to extend; 0 = root
        while let Some(base) = pending.take() {
            if schedules >= self.max_schedules {
                truncated = true;
                break;
            }
            let prefix: Vec<Choice> = stack.iter().map(|f| f.chosen).collect();
            let (steps, deliveries, outcome) = runner(&prefix);
            schedules += 1;
            debug_assert!(
                !matches!(outcome, RunOutcome::Diverged { .. }),
                "self-generated prefix diverged: channel model is not deterministic"
            );
            // Extend the DFS stack with the new decision points.
            for step in steps.iter().skip(base) {
                let sleep = match stack.last() {
                    Some(parent) => parent.child_sleep(&parent.chosen),
                    None => Vec::new(),
                };
                // Wildcard branch fan-out is a tag race.
                self.note_races(step, &stack, &mut findings, &mut race_sigs);
                stack.push(Frame {
                    enabled: step.enabled.clone(),
                    chosen: step.chosen,
                    done: Vec::new(),
                    sleep,
                });
            }
            let witness: Schedule = stack.iter().map(|f| f.chosen).collect();
            match outcome {
                RunOutcome::Terminal => terminals.push((per_rank_deliveries(&deliveries), witness)),
                RunOutcome::Deadlock { blocked } => {
                    if !deadlock_sigs.contains(&blocked) {
                        deadlock_sigs.push(blocked.clone());
                        findings.push(VerifyFinding::Deadlock { blocked, witness });
                    }
                }
                RunOutcome::DepthExceeded => truncated = true,
                RunOutcome::Diverged { .. } => {}
            }
            // Backtrack: deepest node with an unexplored alternative.
            while let Some(frame) = stack.last_mut() {
                let prev = frame.chosen;
                if !frame.done.contains(&prev) {
                    frame.done.push(prev);
                }
                if let Some(alt) = frame.next_alternative() {
                    frame.chosen = alt;
                    pending = Some(stack.len());
                    break;
                }
                stack.pop();
            }
        }
        if pending.is_some() {
            truncated = true;
        }

        // Two terminal schedules with different delivery orders?
        'outer: for (i, (sig_a, wit_a)) in terminals.iter().enumerate() {
            for (sig_b, wit_b) in terminals.iter().skip(i + 1) {
                if sig_a != sig_b {
                    let rank = first_differing_rank(sig_a, sig_b);
                    findings.push(VerifyFinding::DeliveryOrderNondet {
                        rank,
                        witness_a: wit_a.clone(),
                        witness_b: wit_b.clone(),
                    });
                    break 'outer;
                }
            }
        }

        if !findings.is_empty() {
            obs::flight::record(
                "verify.witness",
                "event",
                0.0,
                &[
                    ("findings", findings.len().to_string()),
                    ("schedules", schedules.to_string()),
                    ("first", format!("{:?}", findings[0])),
                ],
            );
            let _ = obs::flight::dump("verify-witness");
        }

        Exploration {
            schedules,
            truncated,
            findings,
        }
    }

    fn note_races(
        &self,
        step: &StepRecord,
        stack: &[Frame],
        findings: &mut Vec<VerifyFinding>,
        race_sigs: &mut Vec<(usize, u64)>,
    ) {
        let mut by_rank: BTreeMap<(usize, u64), Vec<usize>> = BTreeMap::new();
        for c in &step.enabled {
            if let SchedOp::RecvAny { tag } = c.op {
                by_rank
                    .entry((c.rank, tag))
                    .or_default()
                    .push(c.source.expect("wildcard choice has a source"));
            }
        }
        for ((rank, tag), sources) in by_rank {
            if sources.len() >= 2 && !race_sigs.contains(&(rank, tag)) {
                race_sigs.push((rank, tag));
                findings.push(VerifyFinding::TagRace {
                    rank,
                    tag,
                    sources,
                    witness: stack.iter().map(|f| f.chosen).collect(),
                });
            }
        }
    }

    /// Explore every schedule of a lowered [`plan::CommPlan`] — the
    /// dynamic cross-check for the `plan` crate's static verdicts.
    ///
    /// The plan is compiled onto the runtime with [`plan::lower`] on every
    /// explored schedule, so the explorer exercises exactly the message
    /// streams `plan::analyze_plan` reasoned about. Run the static checker
    /// first: a plan with shape errors (self-sends, out-of-range peers)
    /// panics when lowered.
    pub fn explore_plan(&self, world: &World, p: usize, commplan: &plan::CommPlan) -> Exploration {
        self.explore(world, p, |ctx| plan::lower(commplan, ctx))
    }

    /// [`Explorer::explore_plan`], but each directed schedule executes on
    /// the simrt event engine (its controlled thread-per-rank mode) instead
    /// of the mps thread runtime. The controller, the DFS, and the finding
    /// taxonomy are identical — this is the re-validation that the engine's
    /// channel model exposes exactly the schedule space the thread runtime
    /// does.
    pub fn explore_plan_engine(
        &self,
        world: &World,
        p: usize,
        commplan: &plan::CommPlan,
    ) -> Exploration {
        self.explore_with(|prefix| {
            let controller = Arc::new(Controller::new(p, prefix.to_vec(), self.max_depth));
            let directed = world.clone().with_scheduler(controller.clone());
            let _result = simrt::try_run_plan(&directed, p, commplan);
            drop(directed); // release the world's clone of the hook Arc
            let controller = Arc::into_inner(controller)
                .expect("all rank threads joined, controller uniquely owned");
            controller.into_record()
        })
    }
}

/// Per-rank delivery sequences: `rank -> [(source, tag)]` in receive
/// order. Two schedules are delivery-equivalent iff these projections
/// agree — the *global* interleaving of independent receives is pure
/// scheduling, not program-visible nondeterminism.
type DeliverySig = BTreeMap<usize, Vec<(usize, u64)>>;

fn per_rank_deliveries(deliveries: &[(usize, usize, u64)]) -> DeliverySig {
    let mut sig = DeliverySig::new();
    for &(receiver, source, tag) in deliveries {
        sig.entry(receiver).or_default().push((source, tag));
    }
    sig
}

/// First receiver whose delivery sequences differ between two terminal
/// signatures.
fn first_differing_rank(a: &DeliverySig, b: &DeliverySig) -> usize {
    let empty = Vec::new();
    a.keys()
        .chain(b.keys())
        .find(|&&rank| a.get(&rank).unwrap_or(&empty) != b.get(&rank).unwrap_or(&empty))
        .copied()
        .unwrap_or(0)
}
