//! Interval box bisection over the iso-EE analytical model.
//!
//! [`BoxSearch`] drives [`isoee::interval`]'s outward-rounded abstract
//! interpreter over a workload interval `n` at fixed machine parameters
//! and parallelism: if one evaluation certifies `EE ∈ (0, 1]` across the
//! whole box, done; otherwise the box is bisected and the halves tried
//! recursively. The search returns
//!
//! * [`BoxOutcome::Clean`] — every leaf box carries an interval
//!   certificate, so **no** point of the original box raises
//!   [`ModelError::DegenerateBaseline`] and `EE ∈ (0, 1]` throughout;
//! * [`BoxOutcome::Degenerate`] — a sub-box was found whose *entire*
//!   extent is degenerate (`E1 ≤ 0` by interval proof) or whose exact
//!   midpoint evaluation errors; the sub-box and the exact
//!   [`ModelError`] are returned, matching what `isoee::scaling` would
//!   report dynamically;
//! * [`BoxOutcome::Inconclusive`] — the depth budget ran out on a sub-box
//!   that straddles the degeneracy boundary (its midpoint evaluates
//!   cleanly but the interval certificate does not close). Absence of a
//!   finding is then not a proof.
//!
//! Degenerate sub-boxes are searched left-first, so the reported witness
//! is the leftmost one at the deepest refinement — deterministic across
//! runs and thread counts.

use isoee::interval::{evaluate, AppBox, Interval, MachBox};
use isoee::{AppModel, MachineParams, ModelError};

/// Bisection budget and entry points.
#[derive(Debug, Clone, Copy)]
pub struct BoxSearch {
    /// Maximum bisection depth. Each level halves the box, so depth `d`
    /// resolves features down to `width / 2^d`.
    pub max_depth: usize,
}

impl Default for BoxSearch {
    fn default() -> Self {
        Self { max_depth: 24 }
    }
}

/// The verdict on one searched box.
#[derive(Debug, Clone, PartialEq)]
pub enum BoxOutcome {
    /// Every point certified: `EE ∈ (0, 1]` and no `DegenerateBaseline`
    /// anywhere in the box.
    Clean {
        /// Number of leaf sub-boxes whose interval certificates compose
        /// into the proof.
        certified_boxes: usize,
    },
    /// A degenerate sub-box, with the exact error its midpoint raises.
    Degenerate {
        /// The offending workload sub-interval.
        sub_box: Interval,
        /// The exact model error, identical to what the dynamic sweep
        /// path would surface.
        error: ModelError,
    },
    /// Depth budget exhausted on a boundary-straddling sub-box.
    Inconclusive {
        /// The unresolved workload sub-interval.
        sub_box: Interval,
    },
}

impl BoxSearch {
    /// Certify `EE ∈ (0, 1]` for `app` on `mach` across the workload
    /// interval `n` at parallelism `p`.
    ///
    /// # Panics
    /// Panics when `p == 0` or `n` is not finite.
    #[must_use]
    pub fn certify_workload(
        &self,
        app: &dyn AppModel,
        mach: &MachineParams,
        n: Interval,
        p: usize,
    ) -> BoxOutcome {
        assert!(p > 0, "need at least one processor");
        assert!(n.is_finite(), "workload box must be finite, got {n}");
        let m = MachBox::from_params(mach);
        let mut certified = 0usize;
        match self.go(app, mach, &m, n, p, self.max_depth, &mut certified) {
            None => BoxOutcome::Clean {
                certified_boxes: certified,
            },
            Some(bad) => bad,
        }
    }

    /// `None` = the whole of `n` is certified; `Some` = the first failure
    /// (left-first, depth-first).
    #[allow(clippy::too_many_arguments)]
    fn go(
        &self,
        app: &dyn AppModel,
        mach: &MachineParams,
        m: &MachBox,
        n: Interval,
        p: usize,
        depth: usize,
        certified: &mut usize,
    ) -> Option<BoxOutcome> {
        if let Some(a) = AppBox::of_model(app, n, p) {
            let enc = evaluate(m, &a, p);
            if enc.ee_in_unit_certified() {
                *certified += 1;
                return None;
            }
            if enc.provably_degenerate() {
                let error = isoee::model::ee(mach, &app.app_params(n.mid(), p), p)
                    .expect_err("interval proved E1 <= 0 on the whole box; midpoint must error");
                return Some(BoxOutcome::Degenerate { sub_box: n, error });
            }
        }
        // No interval certificate at this box (no mirror, or the enclosure
        // straddles the boundary): probe the midpoint exactly, then refine.
        if let Err(error) = isoee::model::ee(mach, &app.app_params(n.mid(), p), p) {
            return Some(BoxOutcome::Degenerate {
                sub_box: Interval::point(n.mid()),
                error,
            });
        }
        if depth == 0 || n.width() == 0.0 {
            return Some(BoxOutcome::Inconclusive { sub_box: n });
        }
        let (lo, hi) = n.split();
        self.go(app, mach, m, lo, p, depth - 1, certified)
            .or_else(|| self.go(app, mach, m, hi, p, depth - 1, certified))
    }
}
