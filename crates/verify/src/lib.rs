//! # verify — ahead-of-time verification for the iso-EE stack
//!
//! Two analysis engines that prove properties *before* a run or sweep is
//! committed, complementing the trace-based (single-execution) checkers in
//! `analyze`:
//!
//! * **Schedule-space model checking** ([`explore`]): a stateless DFS over
//!   the send/recv/collective interleavings of a small [`mps::World`]
//!   (p ≤ 4 is the intended scale), driven through the runtime's
//!   [`mps::SchedulerHook`] so every explored schedule is a *real*
//!   execution of the real runtime, not an abstraction of it. Sleep-set
//!   partial-order reduction prunes commuting interleavings; deadlocks,
//!   wildcard-receive tag races and delivery-order nondeterminism are
//!   reported with replayable schedule witnesses ([`witness`]) that can be
//!   minimized and exported through the existing obs/Perfetto tracing.
//! * **Interval box bisection** ([`boxes`]): drives
//!   [`isoee::interval`]'s outward-rounded abstract interpreter over
//!   continuous parameter boxes, proving `EE ∈ (0, 1]` and the absence of
//!   `DegenerateBaseline` across a whole box — or bisecting down to the
//!   exact offending sub-box.
//!
//! The single-trace vector-clock checker (`analyze::check_report`) can
//! only judge the one interleaving that happened; the explorer covers the
//! interleavings that *could* happen. The two agree by construction: a
//! world the explorer certifies bug-free yields no findings from the trace
//! checker on any explored schedule's replay (the workspace's
//! `tests/verification.rs` enforces that cross-check on the 4-rank FT
//! example).

#![forbid(unsafe_code)]

pub mod boxes;
pub mod explore;
pub mod programs;
pub mod witness;

pub use boxes::{BoxOutcome, BoxSearch};
pub use explore::{Choice, Exploration, Explorer, VerifyFinding};
pub use witness::{minimize_deadlock, replay, witness_trace};
