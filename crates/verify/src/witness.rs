//! Witness replay, minimization, and export.
//!
//! A witness is a [`Schedule`] — the exact choice sequence that drove an
//! explored execution. Because the explorer's controller only ever grants
//! *enabled* operations, a schedule is a deterministic recipe:
//! [`replay`] re-executes it against the real runtime (optionally with an
//! obs-instrumented world, so the replay flows through the existing
//! Perfetto tracing), [`minimize_deadlock`] shrinks a deadlock witness by
//! greedy delta debugging while preserving the blocked signature, and
//! [`witness_trace`] renders a schedule as a standalone [`obs::Trace`]
//! (one span per scheduling decision, step index as virtual time) for
//! `obs::perfetto::write_file`.
//!
//! ## Replay contract
//!
//! * Replaying a **terminal** witness returns `Ok(RunReport)` — the full
//!   report, including per-rank `CommLog`s the trace-based checkers in
//!   `analyze` consume.
//! * Replaying a **deadlock** witness returns
//!   `Err(RunError::SchedulerAbort { comm })`: at the deadlocked state the
//!   controller tears the world down, and the partial per-rank
//!   communication traces collected up to that point ride along.
//! * A schedule replayed against a *different* program or world may
//!   diverge (a prefixed choice is not enabled); the run is then also torn
//!   down with `SchedulerAbort`.

use mps::{Ctx, RunError, RunReport, SchedOp, World};
use obs::{Category, FieldValue, SpanRecord, Trace, TrackTrace};

use crate::explore::{run_directed, Choice, Explorer, RunOutcome, Schedule};

/// Re-execute `schedule` against the real runtime: the controller grants
/// exactly the witnessed choices, then falls back to the first-enabled
/// policy for any remaining operations.
///
/// Pass a `world` built `.with_obs(ObsConfig::enabled())` to capture the
/// replay through the standard span/Perfetto pipeline.
pub fn replay<R, F>(
    world: &World,
    p: usize,
    program: F,
    schedule: &[Choice],
) -> Result<RunReport<R>, RunError>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    let (_steps, _deliveries, _outcome, result) =
        run_directed(world, p, &program, schedule, Explorer::default().max_depth);
    result
}

/// Greedy delta debugging over a deadlock witness: repeatedly drop single
/// choices, keeping a candidate only when its replay still reaches a
/// deadlock with the *identical* blocked signature. Terminates because
/// every accepted candidate is strictly shorter; the result is 1-minimal
/// (no single choice can be removed).
///
/// For an inevitable deadlock the minimum is the empty schedule — the
/// default policy alone reproduces it, which is itself useful signal: the
/// bug needs no adversarial scheduling.
pub fn minimize_deadlock<R, F>(
    world: &World,
    p: usize,
    program: F,
    witness: &[Choice],
    blocked: &[(usize, SchedOp)],
) -> Schedule
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    let max_depth = Explorer::default().max_depth;
    let reproduces = |candidate: &[Choice]| {
        let (_, _, outcome, _) = run_directed::<R, _>(world, p, &program, candidate, max_depth);
        matches!(outcome, RunOutcome::Deadlock { blocked: b } if b.as_slice() == blocked)
    };
    let mut current: Schedule = witness.to_vec();
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if reproduces(&candidate) {
                current = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Render a schedule as a standalone [`obs::Trace`]: one track per rank,
/// one unit-length span per scheduling decision with the global step index
/// as virtual time, so the Perfetto timeline reads as the exact
/// interleaving the controller granted. Wildcard grants carry their
/// matched source as a span field.
#[must_use]
pub fn witness_trace(name: &str, p: usize, schedule: &[Choice]) -> Trace {
    let mut trace = Trace::new(name);
    trace
        .meta
        .push(("verify.schedule_len".into(), schedule.len().to_string()));
    trace.tracks = (0..p)
        .map(|track| TrackTrace {
            track,
            spans: Vec::new(),
            instants: Vec::new(),
        })
        .collect();
    for (i, c) in schedule.iter().enumerate() {
        assert!(
            c.rank < p,
            "witness rank {} out of range for p = {p}",
            c.rank
        );
        let mut fields = vec![("step", FieldValue::U64(i as u64))];
        let (name, tag) = match c.op {
            SchedOp::Send { to, tag } => (format!("send -> {to}"), tag),
            SchedOp::Recv { from, tag } => (format!("recv <- {from}"), tag),
            SchedOp::RecvAny { tag } => {
                let src = c.source.expect("granted wildcard carries its source");
                fields.push(("matched_source", FieldValue::U64(src as u64)));
                (format!("recv_any <- {src}"), tag)
            }
        };
        fields.push(("tag", FieldValue::U64(tag)));
        trace.tracks[c.rank].spans.push(SpanRecord {
            name,
            cat: Category::Network,
            track: c.rank,
            start_s: i as f64,
            end_s: (i + 1) as f64,
            depth: 0,
            host_start_ns: 0,
            host_end_ns: 0,
            forced_close: false,
            fields,
        });
    }
    trace
}
