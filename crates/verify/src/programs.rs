//! Seeded verification programs: tiny `mps` worlds with known-good and
//! known-bad communication structures.
//!
//! These are the explorer's ground truth — each program either has a
//! certificate (`ring`) or a seeded bug the explorer must find within its
//! bounds (a structural deadlock, a wildcard tag race, and a
//! *schedule-dependent* deadlock that a single lucky trace never
//! exhibits). `analyze --verify` and the workspace CI `verify` job run the
//! explorer over exactly these worlds, and `crates/verify`'s tests pin the
//! expected findings.

use mps::{Ctx, World};
use simcluster::system_g;

/// Tag used by the healthy ring rounds.
pub const TAG_RING: u64 = 1;
/// Tag used by the cyclic blocking receives.
pub const TAG_CYCLE: u64 = 2;
/// Tag contended by the wildcard receivers.
pub const TAG_RACE: u64 = 7;
/// Tag used by the schedule-dependent deadlock.
pub const TAG_DEP: u64 = 5;

/// The small world every seeded program runs on: the paper's System G
/// cluster at its nominal 2.8 GHz.
#[must_use]
pub fn demo_world() -> World {
    World::new(system_g(), 2.8e9)
}

/// A clean unidirectional ring exchange: every rank eagerly sends to its
/// successor, then receives from its predecessor. Deadlock-free and
/// deterministic for every `p ≥ 2`; the explorer certifies it.
pub fn ring(ctx: &mut Ctx) -> u64 {
    let p = ctx.size();
    let r = ctx.rank();
    ctx.send(r.wrapping_add(1) % p, TAG_RING, vec![r as u64]);
    let v: Vec<u64> = ctx.recv((r + p - 1) % p, TAG_RING);
    v[0]
}

/// A structural deadlock behind a healthy warm-up round: after one clean
/// ring exchange, every rank blocks receiving from its *successor* while
/// the matching sends sit *after* the receives — a cyclic wait no schedule
/// escapes. The warm-up gives the deadlock witness removable fat, which is
/// what makes [`crate::minimize_deadlock`] demonstrable: the minimal
/// forcing prefix is empty because the deadlock is inevitable.
pub fn cyclic_deadlock(ctx: &mut Ctx) -> u64 {
    let p = ctx.size();
    let r = ctx.rank();
    ctx.send((r + 1) % p, TAG_RING, vec![r as u64]);
    let warm: Vec<u64> = ctx.recv((r + p - 1) % p, TAG_RING);
    let v: Vec<u64> = ctx.recv((r + 1) % p, TAG_CYCLE);
    ctx.send((r + p - 1) % p, TAG_CYCLE, vec![r as u64 + warm[0]]);
    v[0] + warm[0]
}

/// A wildcard tag race: rank 0 drains `p - 1` messages with
/// `recv_any(TAG_RACE)` while every other rank sends one. Which sender
/// matches each wildcard depends on the schedule, so the explorer reports
/// both a [`crate::VerifyFinding::TagRace`] and (because rank 0's result
/// folds the source order in) delivery-order nondeterminism.
pub fn wildcard_race(ctx: &mut Ctx) -> u64 {
    if ctx.rank() == 0 {
        let mut acc = 0u64;
        for _ in 1..ctx.size() {
            let (src, v): (usize, Vec<u64>) = ctx.recv_any(TAG_RACE);
            acc = acc * 100 + (src as u64) * 10 + v[0];
        }
        acc
    } else {
        ctx.send(0, TAG_RACE, vec![ctx.rank() as u64]);
        0
    }
}

/// A *schedule-dependent* deadlock — the case the single-trace vector-clock
/// checker structurally cannot see. Rank 0 takes one wildcard receive and
/// then a specific `recv(1, TAG_DEP)`; ranks 1 and 2 each send once. If the
/// wildcard happens to match rank 2, the run completes and any trace-based
/// checker passes it; if it matches rank 1, the specific receive can never
/// be satisfied. Only schedule-space exploration proves the bad branch
/// exists. Requires `p == 3`.
pub fn wildcard_then_specific(ctx: &mut Ctx) -> u64 {
    assert_eq!(ctx.size(), 3, "wildcard_then_specific is a 3-rank scenario");
    match ctx.rank() {
        0 => {
            let (_src, a): (usize, Vec<u64>) = ctx.recv_any(TAG_DEP);
            let b: Vec<u64> = ctx.recv(1, TAG_DEP);
            a[0] + b[0]
        }
        r => {
            ctx.send(0, TAG_DEP, vec![r as u64]);
            0
        }
    }
}
