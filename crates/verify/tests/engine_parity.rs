//! Explorer parity: the simrt event engine under the schedule-space
//! model checker must be indistinguishable from the mps thread runtime.
//!
//! [`Explorer::explore_plan`] drives the thread runtime through the
//! controller; [`Explorer::explore_plan_engine`] drives simrt's
//! controlled mode through the *same* controller and DFS. Because the
//! explorer reasons only about the scheduling observations (enabled sets,
//! deliveries, outcomes), full parity — schedule counts, truncation, and
//! the findings with their witnesses — certifies that the engine's
//! channel model exposes exactly the thread runtime's schedule space.

use plan::{CommPlan, Cond, Expr, Op, TagExpr};
use proptest::prelude::*;
use proptest::TestRng;
use verify::programs::demo_world;
use verify::{Explorer, VerifyFinding};

#[allow(clippy::cast_possible_wrap)]
fn send(to: usize, tag: u64, bytes: u64) -> Op {
    Op::Send {
        to: Expr::Const(to as i64),
        tag: TagExpr::Expr(Expr::Const(tag as i64)),
        bytes: Expr::Const(bytes as i64),
    }
}

#[allow(clippy::cast_possible_wrap)]
fn recv(from: usize, tag: u64) -> Op {
    Op::Recv {
        from: Expr::Const(from as i64),
        tag: TagExpr::Expr(Expr::Const(tag as i64)),
    }
}

#[allow(clippy::cast_possible_wrap)]
fn per_rank(rank_ops: Vec<Vec<Op>>) -> CommPlan {
    let body = rank_ops
        .into_iter()
        .enumerate()
        .map(|(r, ops)| Op::IfElse {
            cond: Cond::Eq(Expr::Rank, Expr::Const(r as i64)),
            then: ops,
            els: Vec::new(),
        })
        .collect();
    CommPlan::new("parity", body)
}

fn explorer() -> Explorer {
    Explorer {
        max_schedules: 64,
        max_depth: 10_000,
    }
}

/// Compare two explorations structurally (findings carry witnesses, so
/// Debug equality is full parity).
fn assert_parity(plan: &CommPlan, p: usize) {
    let world = demo_world();
    let ex = explorer();
    let threads = ex.explore_plan(&world, p, plan);
    let engine = ex.explore_plan_engine(&world, p, plan);
    assert_eq!(threads.schedules, engine.schedules, "schedule count");
    assert_eq!(threads.truncated, engine.truncated, "truncation");
    assert_eq!(
        format!("{:?}", threads.findings),
        format!("{:?}", engine.findings),
        "findings + witnesses"
    );
}

#[test]
fn ring_certifies_on_both_runtimes() {
    // 0 -> 1 -> 2 -> 0, forwarding a token: one schedule, no findings.
    let plan = per_rank(vec![
        vec![send(1, 1, 8), recv(2, 1)],
        vec![recv(0, 1), send(2, 1, 8)],
        vec![recv(1, 1), send(0, 1, 8)],
    ]);
    let world = demo_world();
    let ex = explorer();
    let engine = ex.explore_plan_engine(&world, 3, &plan);
    assert!(engine.certified(), "{:?}", engine.findings);
    assert_parity(&plan, 3);
}

#[test]
fn deadlock_is_found_on_both_runtimes() {
    // Mutual recv-before-send: every schedule deadlocks.
    let plan = per_rank(vec![
        vec![recv(1, 1), send(1, 2, 8)],
        vec![recv(0, 2), send(0, 1, 8)],
    ]);
    let world = demo_world();
    let engine = explorer().explore_plan_engine(&world, 2, &plan);
    assert!(
        engine
            .findings
            .iter()
            .any(|f| matches!(f, VerifyFinding::Deadlock { .. })),
        "{:?}",
        engine.findings
    );
    assert_parity(&plan, 2);
}

#[test]
fn tag_race_is_found_on_both_runtimes() {
    // Two senders race into one wildcard receiver.
    let plan = per_rank(vec![
        vec![
            Op::RecvAny {
                tag: TagExpr::Expr(Expr::Const(3)),
            },
            Op::RecvAny {
                tag: TagExpr::Expr(Expr::Const(3)),
            },
        ],
        vec![send(0, 3, 8)],
        vec![send(0, 3, 8)],
    ]);
    let world = demo_world();
    let engine = explorer().explore_plan_engine(&world, 3, &plan);
    assert!(
        engine
            .findings
            .iter()
            .any(|f| matches!(f, VerifyFinding::TagRace { .. })),
        "{:?}",
        engine.findings
    );
    assert_parity(&plan, 3);
}

/// Randomized parity sweep, same generator shape as the static/dynamic
/// differential: matched pairs, orphan recvs, wildcards, shuffled per
/// rank.
fn random_plan(rng: &mut TestRng, p: usize) -> CommPlan {
    let n_events = rng.next_in_u64(1, 6);
    let mut rank_ops: Vec<Vec<Op>> = vec![Vec::new(); p];
    for _ in 0..n_events {
        let kind = rng.next_in_u64(0, 10);
        let src = rng.next_in_u64(0, p as u64) as usize;
        let mut dst = rng.next_in_u64(0, p as u64 - 1) as usize;
        if dst >= src {
            dst += 1;
        }
        let tag = rng.next_in_u64(0, 3);
        let bytes = 8 * (1 + rng.next_in_u64(0, 4));
        match kind {
            0..=5 => {
                rank_ops[src].push(send(dst, tag, bytes));
                rank_ops[dst].push(recv(src, tag));
            }
            6 | 7 => rank_ops[dst].push(recv(src, tag)),
            _ => {
                rank_ops[src].push(send(dst, tag, bytes));
                #[allow(clippy::cast_possible_wrap)]
                rank_ops[dst].push(Op::RecvAny {
                    tag: TagExpr::Expr(Expr::Const(tag as i64)),
                });
            }
        }
    }
    for ops in &mut rank_ops {
        for i in (1..ops.len()).rev() {
            let j = rng.next_in_u64(0, i as u64 + 1) as usize;
            ops.swap(i, j);
        }
    }
    per_rank(rank_ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_exploration_matches_thread_exploration(seed in any::<u64>(), p in 2usize..=3) {
        let mut rng = TestRng::new(seed);
        let plan = random_plan(&mut rng, p);
        let analysis = plan::analyze_plan(&plan, p);
        // Plans that complete with leftover in-flight sends trip the
        // runtimes' unconsumed-message debug_assert by design; the static
        // checker owns that verdict.
        let leftovers = analysis
            .findings
            .iter()
            .any(|f| matches!(f, plan::PlanFinding::UnmatchedSend { .. }));
        prop_assume!(!(analysis.completed && leftovers));

        let world = demo_world();
        let ex = explorer();
        let threads = ex.explore_plan(&world, p, &plan);
        let engine = ex.explore_plan_engine(&world, p, &plan);
        prop_assert_eq!(threads.schedules, engine.schedules);
        prop_assert_eq!(threads.truncated, engine.truncated);
        prop_assert_eq!(
            format!("{:?}", threads.findings),
            format!("{:?}", engine.findings)
        );
    }
}
