//! The ISSUE's acceptance criteria for the schedule-space model checker:
//! a seeded cyclic deadlock at p = 3 and a seeded tag race are detected
//! within bounded exploration, with replayable minimized witnesses; the
//! clean ring is certified; the schedule-dependent deadlock (invisible to
//! any single trace) is found alongside a completing schedule.

use mps::{RunError, SchedOp};
use obs::ObsConfig;
use verify::programs::{
    cyclic_deadlock, demo_world, ring, wildcard_race, wildcard_then_specific, TAG_CYCLE, TAG_DEP,
    TAG_RACE,
};
use verify::{minimize_deadlock, replay, witness_trace, Explorer, VerifyFinding};

#[test]
fn clean_ring_is_certified() {
    let world = demo_world();
    for p in [2, 3, 4] {
        let exploration = Explorer::default().explore(&world, p, ring);
        assert!(
            exploration.certified(),
            "ring at p = {p} should certify, got findings {:?} (truncated: {})",
            exploration.findings,
            exploration.truncated
        );
        assert!(exploration.schedules >= 1);
    }
}

#[test]
fn cyclic_deadlock_is_found_minimized_and_replayable() {
    let world = demo_world();
    let p = 3;
    let exploration = Explorer::default().explore(&world, p, cyclic_deadlock);
    assert!(!exploration.truncated, "tiny world must explore fully");

    let (blocked, witness) = exploration
        .findings
        .iter()
        .find_map(|f| match f {
            VerifyFinding::Deadlock { blocked, witness } => {
                Some((blocked.clone(), witness.clone()))
            }
            _ => None,
        })
        .expect("the seeded cyclic deadlock must be detected");

    // The blocked signature is the full 3-cycle of receives on TAG_CYCLE.
    assert_eq!(blocked.len(), p, "all three ranks are stuck: {blocked:?}");
    for (rank, op) in &blocked {
        assert_eq!(
            *op,
            SchedOp::Recv {
                from: (rank + 1) % p,
                tag: TAG_CYCLE
            },
            "rank {rank} must be stuck on its successor"
        );
    }

    // The witness replays to the deadlock: the controller aborts the run
    // and hands back the partial per-rank communication traces.
    let replayed = replay::<u64, _>(&world, p, cyclic_deadlock, &witness);
    match replayed {
        Err(RunError::SchedulerAbort { comm }) => assert_eq!(comm.len(), p),
        other => panic!("deadlock replay must abort, got {other:?}"),
    }

    // The deadlock is inevitable, so delta debugging shrinks the witness
    // to the empty schedule — and that minimum still reproduces.
    let minimized = minimize_deadlock::<u64, _>(&world, p, cyclic_deadlock, &witness, &blocked);
    assert!(
        minimized.is_empty(),
        "inevitable deadlock minimizes to the empty schedule, got {minimized:?}"
    );
    assert!(replay::<u64, _>(&world, p, cyclic_deadlock, &minimized).is_err());
}

#[test]
fn wildcard_tag_race_is_found_with_both_orders_replayable() {
    let world = demo_world();
    let p = 3;
    let exploration = Explorer::default().explore(&world, p, wildcard_race);
    assert!(!exploration.truncated);

    let race = exploration
        .findings
        .iter()
        .find_map(|f| match f {
            VerifyFinding::TagRace {
                rank,
                tag,
                sources,
                witness,
            } => Some((*rank, *tag, sources.clone(), witness.clone())),
            _ => None,
        })
        .expect("the seeded wildcard race must be detected");
    assert_eq!(race.0, 0, "rank 0 holds the racing wildcard");
    assert_eq!(race.1, TAG_RACE);
    assert_eq!(race.2, vec![1, 2], "both senders race for the match");

    // The race is observable: two terminal schedules deliver to rank 0 in
    // different orders and produce different results.
    let (witness_a, witness_b) = exploration
        .findings
        .iter()
        .find_map(|f| match f {
            VerifyFinding::DeliveryOrderNondet {
                witness_a,
                witness_b,
                ..
            } => Some((witness_a.clone(), witness_b.clone())),
            _ => None,
        })
        .expect("source order must be reported as delivery nondeterminism");
    let run_a = replay::<u64, _>(&world, p, wildcard_race, &witness_a).expect("completes");
    let run_b = replay::<u64, _>(&world, p, wildcard_race, &witness_b).expect("completes");
    assert_ne!(
        run_a.ranks[0].result, run_b.ranks[0].result,
        "the two match orders are program-visible"
    );
}

#[test]
fn schedule_dependent_deadlock_is_found_beyond_any_single_trace() {
    let world = demo_world();
    let p = 3;
    let exploration = Explorer::default().explore(&world, p, wildcard_then_specific);
    assert!(!exploration.truncated);

    // The bad branch: wildcard matched rank 1, so recv(1, TAG_DEP) starves.
    let (blocked, witness) = exploration
        .findings
        .iter()
        .find_map(|f| match f {
            VerifyFinding::Deadlock { blocked, witness } => {
                Some((blocked.clone(), witness.clone()))
            }
            _ => None,
        })
        .expect("the schedule-dependent deadlock must be detected");
    assert_eq!(
        blocked,
        vec![(
            0,
            SchedOp::Recv {
                from: 1,
                tag: TAG_DEP
            }
        )]
    );
    assert!(replay::<u64, _>(&world, p, wildcard_then_specific, &witness).is_err());

    // ... while at least one schedule completes: a single lucky trace shows
    // nothing, which is exactly why exploration is needed. Find a terminal
    // schedule by replaying the good wildcard branch via the race witness.
    let good: Vec<_> = exploration
        .findings
        .iter()
        .filter_map(|f| match f {
            VerifyFinding::TagRace { sources, .. } => Some(sources.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(good, vec![vec![1, 2]], "the wildcard race is also reported");
}

#[test]
fn witnesses_export_to_valid_perfetto_traces() {
    let world = demo_world();
    let p = 3;
    let exploration = Explorer::default().explore(&world, p, cyclic_deadlock);
    let witness = exploration
        .findings
        .iter()
        .find_map(|f| match f {
            VerifyFinding::Deadlock { witness, .. } => Some(witness.clone()),
            _ => None,
        })
        .expect("deadlock witness");
    assert!(!witness.is_empty(), "the unminimized witness has steps");

    let trace = witness_trace("cyclic-deadlock-witness", p, &witness);
    assert_eq!(trace.tracks.len(), p);
    let spans: usize = trace.tracks.iter().map(|t| t.spans.len()).sum();
    assert_eq!(spans, witness.len(), "one span per scheduling decision");

    let doc = obs::perfetto::render(&trace);
    let report = obs::perfetto::validate(&doc).expect("witness trace renders valid JSON");
    assert_eq!(report.span_events, witness.len(), "one X event per span");
}

#[test]
fn replay_flows_through_obs_tracing() {
    // A witness replay on an obs-enabled world produces the standard span
    // trace — the witness-replay contract analyze's --verify pass relies on.
    let world = demo_world().with_obs(ObsConfig::enabled());
    let p = 3;
    let exploration = Explorer::default().explore(&world, p, ring);
    assert!(exploration.certified());

    // Any fully-explored schedule is replayable; use the default policy's.
    let report = replay::<u64, _>(&world, p, ring, &[]).expect("ring completes");
    let trace = report.trace("ring-replay").expect("obs enabled");
    assert_eq!(trace.tracks.len(), p);
    assert!(
        trace.tracks.iter().any(|t| !t.spans.is_empty()),
        "the replay recorded real spans"
    );
}
