//! Differential test: the `plan` crate's *static* deadlock/matching
//! verdicts against this crate's *dynamic* schedule-space explorer.
//!
//! Random small [`CommPlan`]s (p ≤ 4) are analyzed with
//! [`plan::analyze_plan`] and then lowered and explored schedule-by-
//! schedule with [`Explorer::explore_plan`]. The contract:
//!
//! * **No static false-negatives**: a plan any schedule can deadlock is
//!   never certified [`PlanAnalysis::deadlock_free`].
//! * **Exactness where claimed**: for wildcard-free plans
//!   (`analysis.exact`), the static verdict *equals* the dynamic one —
//!   greedy confluence makes wildcard-free matching schedule-independent,
//!   so one abstract run decides all interleavings.
//! * **Conservatism is flagged**: plans with `RecvAny` at p > 2 always
//!   carry `exact == false`, so a wildcard verdict can never masquerade
//!   as a certificate.
//!
//! Plans that complete while leaving unmatched sends in flight are
//! checked statically but not explored: the runtime treats unconsumed
//! messages at rank exit as a program bug (`debug_assert`), which is the
//! deliberate strictness the static `UnmatchedSend` finding mirrors.

use plan::{analyze_plan, CommPlan, Cond, Expr, Op, PlanFinding, TagExpr};
use proptest::prelude::*;
use proptest::TestRng;
use verify::programs::demo_world;
use verify::{Explorer, VerifyFinding};

#[allow(clippy::cast_possible_wrap)]
fn send(to: usize, tag: u64, bytes: u64) -> Op {
    Op::Send {
        to: Expr::Const(to as i64),
        tag: TagExpr::Expr(Expr::Const(tag as i64)),
        bytes: Expr::Const(bytes as i64),
    }
}

#[allow(clippy::cast_possible_wrap)]
fn recv(from: usize, tag: u64) -> Op {
    Op::Recv {
        from: Expr::Const(from as i64),
        tag: TagExpr::Expr(Expr::Const(tag as i64)),
    }
}

/// A random plan over `p` ranks: a mix of matched send/recv pairs,
/// orphan recvs and wildcard receives, each rank's op list independently
/// shuffled so blocking receives can precede the sends they transitively
/// wait on (the deadlock-generating move — sends are eager, so only recv
/// ordering can block). Every send has a receive accounted to its
/// `(destination, tag)`, so a completed rank has always consumed every
/// message addressed to it — the runtime treats a send to an
/// already-finished rank as a program error, which is exactly the static
/// `UnmatchedSend` verdict and is unit-tested on the checker instead.
fn random_plan(rng: &mut TestRng, p: usize) -> CommPlan {
    let n_events = rng.next_in_u64(1, 7);
    let mut rank_ops: Vec<Vec<Op>> = vec![Vec::new(); p];
    for _ in 0..n_events {
        let kind = rng.next_in_u64(0, 10);
        let src = rng.next_in_u64(0, p as u64) as usize;
        let mut dst = rng.next_in_u64(0, p as u64 - 1) as usize;
        if dst >= src {
            dst += 1;
        }
        let tag = rng.next_in_u64(0, 3);
        let bytes = 8 * (1 + rng.next_in_u64(0, 4));
        match kind {
            0..=5 => {
                rank_ops[src].push(send(dst, tag, bytes));
                rank_ops[dst].push(recv(src, tag));
            }
            6 | 7 => rank_ops[dst].push(recv(src, tag)),
            _ => {
                rank_ops[src].push(send(dst, tag, bytes));
                #[allow(clippy::cast_possible_wrap)]
                rank_ops[dst].push(Op::RecvAny {
                    tag: TagExpr::Expr(Expr::Const(tag as i64)),
                });
            }
        }
    }
    for ops in &mut rank_ops {
        for i in (1..ops.len()).rev() {
            let j = rng.next_in_u64(0, i as u64 + 1) as usize;
            ops.swap(i, j);
        }
    }
    #[allow(clippy::cast_possible_wrap)]
    let body = rank_ops
        .into_iter()
        .enumerate()
        .map(|(r, ops)| Op::IfElse {
            cond: Cond::Eq(Expr::Rank, Expr::Const(r as i64)),
            then: ops,
            els: Vec::new(),
        })
        .collect();
    CommPlan::new("random", body)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn static_verdicts_agree_with_the_explorer(seed in any::<u64>(), p in 2usize..=4) {
        let mut rng = TestRng::new(seed);
        let plan = random_plan(&mut rng, p);

        let analysis = analyze_plan(&plan, p);
        // The generator never emits shape errors: all peers in range, no
        // self-messages, tags tiny.
        prop_assert!(
            !analysis.findings.iter().any(|f| matches!(f, PlanFinding::Shape { .. })),
            "generator produced a shape error: {:?}",
            analysis.findings
        );
        let static_deadlock = !analysis.completed;
        // A wildcard that executes must flag the verdict conservative at
        // p > 2. (A wildcard a rank provably never reaches — it blocks
        // earlier on a wildcard-free prefix, in every schedule — may
        // soundly leave the verdict exact, so only completed plans are
        // required to be flagged.)
        if plan.has_wildcard() && p > 2 && analysis.completed {
            prop_assert!(!analysis.exact, "wildcard verdict claimed exact at p = {p}");
        }

        // Completed-with-leftover-sends plans are a static-only verdict
        // (the runtime debug_asserts on unconsumed messages at exit).
        let leftovers = analysis
            .findings
            .iter()
            .any(|f| matches!(f, PlanFinding::UnmatchedSend { .. }));
        prop_assume!(!(analysis.completed && leftovers));

        let world = demo_world();
        let explorer = Explorer { max_schedules: 64, max_depth: 10_000 };
        let exploration = explorer.explore_plan(&world, p, &plan);
        let dynamic_deadlock = exploration
            .findings
            .iter()
            .any(|f| matches!(f, VerifyFinding::Deadlock { .. }));

        // Safety: a dynamically deadlocking plan is never certified.
        prop_assert!(
            !(dynamic_deadlock && analysis.deadlock_free()),
            "static certificate contradicts a dynamic deadlock: {:?}",
            analysis.findings
        );
        // Exactness: wildcard-free verdicts match the explorer both ways
        // (greedy confluence — any one schedule decides them all).
        if analysis.exact {
            prop_assert_eq!(
                static_deadlock,
                dynamic_deadlock,
                "exact static verdict ({:?}) disagrees with explorer ({:?})",
                analysis.findings,
                exploration.findings
            );
        }
    }
}

/// Timing probe for the EXPERIMENTS.md static-vs-dynamic table
/// (`cargo test -p verify --release --test plan_differential -- --ignored --nocapture`):
/// static whole-plan certification versus bounded schedule-space
/// exploration of the same lowered plan, on the 4-rank NPB plans.
#[test]
#[ignore = "timing probe"]
fn perf_static_vs_explorer_on_npb_plans() {
    use std::time::Instant;
    let class = npb::Class::S;
    let plans = [
        ("ft", npb::ft_plan(&npb::FtConfig::class(class))),
        ("ep", npb::ep_plan(&npb::EpConfig::class(class))),
        ("cg", npb::cg_plan(&npb::CgConfig::class(class))),
    ];
    let p = 4;
    let world = demo_world();
    for (name, commplan) in &plans {
        let t0 = Instant::now();
        let analysis = plan::analyze_plan(commplan, p);
        let t_static = t0.elapsed();
        assert!(analysis.deadlock_free(), "{name}: {:?}", analysis.findings);

        let explorer = Explorer {
            max_schedules: 4,
            max_depth: 1_000_000,
        };
        let t0 = Instant::now();
        let exploration = explorer.explore_plan(&world, p, commplan);
        let t_dyn = t0.elapsed();
        println!(
            "{name} p={p}: static {t_static:?} ({} steps) | explorer {t_dyn:?} \
             ({} schedule(s), truncated={})",
            analysis.steps, exploration.schedules, exploration.truncated
        );
    }
}
