//! Interval-engine acceptance: box bisection certifies the real NPB
//! models' workload ranges, converges onto known-degenerate seeds, and the
//! abstract interpreter is sound (every point evaluation lies inside the
//! box evaluation) under randomized probing.

use isoee::interval::{evaluate, AppBox, Interval, MachBox};
use isoee::{AppModel, AppParams, CgModel, EpModel, FtModel, MachineParams};
use proptest::prelude::*;
use verify::{BoxOutcome, BoxSearch};

fn mach() -> MachineParams {
    MachineParams::system_g(2.8e9)
}

#[test]
fn npb_workload_boxes_certify_clean() {
    let m = mach();
    let search = BoxSearch::default();
    let (ft, ep, cg) = (
        FtModel::system_g(),
        EpModel::system_g(),
        CgModel::system_g(),
    );
    let cases: [(&dyn AppModel, Interval, usize); 3] = [
        (&ft, Interval::new(1e5, 4e6), 64),
        (&ep, Interval::new(1e5, 4e6), 64),
        (&cg, Interval::new(1e5, 4e6), 64),
    ];
    for (app, n, p) in cases {
        match search.certify_workload(app, &m, n, p) {
            BoxOutcome::Clean { certified_boxes } => assert!(certified_boxes >= 1),
            other => panic!("{} on {n} must certify clean, got {other:?}", app.name()),
        }
    }
}

/// Like `isoee::scaling`'s ThresholdModel: the workload vector degenerates
/// to all-zero (so `E1 = 0`) below `n = 1e6`. Above the threshold it
/// carries a strictly positive parallel overhead, so `Ep > E1` and the
/// healthy region is interval-certifiable (an `ideal` workload has
/// `Ep = E1` exactly, which outward rounding can never bound below 1).
struct ThresholdModel;

impl AppModel for ThresholdModel {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn app_params(&self, n: f64, _p: usize) -> AppParams {
        if n < 1e6 {
            AppParams::ideal(0.0)
        } else {
            AppParams::from_raw(1.0, n, 0.0, 0.1 * n, 0.0, 10.0, 1e4, 0.0)
        }
    }
}

#[test]
fn bisection_converges_on_the_degenerate_seed() {
    // The searched box straddles the threshold; the search must come back
    // Degenerate with a sub-box inside the bad region, not Clean and not
    // Inconclusive.
    let m = mach();
    let out =
        BoxSearch::default().certify_workload(&ThresholdModel, &m, Interval::new(1e5, 4e6), 8);
    match out {
        BoxOutcome::Degenerate { sub_box, error } => {
            assert!(
                sub_box.hi < 1e6,
                "witness sub-box {sub_box} must sit below the threshold"
            );
            let isoee::ModelError::DegenerateBaseline { e1 } = error;
            assert_eq!(e1, simcluster::units::Joules::ZERO);
        }
        other => panic!("expected a degenerate witness, got {other:?}"),
    }

    // An entirely-degenerate box is proven degenerate as a whole.
    let all_bad =
        BoxSearch::default().certify_workload(&ThresholdModel, &m, Interval::new(1e3, 1e5), 8);
    assert!(matches!(all_bad, BoxOutcome::Degenerate { .. }));

    // An entirely-healthy sub-range certifies (point boxes work even
    // without an interval mirror).
    let healthy =
        BoxSearch::default().certify_workload(&ThresholdModel, &m, Interval::point(2e6), 8);
    assert!(
        matches!(healthy, BoxOutcome::Clean { .. }),
        "got {healthy:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of the abstract interpreter: for a random workload box
    /// and a random point inside it, every exact model quantity lies in
    /// the corresponding interval enclosure.
    #[test]
    fn point_evaluations_lie_inside_box_enclosures(
        lo in 2.0f64..1e6,
        width in 0.0f64..1e6,
        frac in 0.0f64..1.0,
        p_log2 in 1u32..10,
    ) {
        let p = 1usize << p_log2; // CG needs a power-of-two p
        let n_box = Interval::new(lo, lo + width);
        let n = (lo + frac * width).clamp(n_box.lo, n_box.hi);
        let m = mach();
        let mb = MachBox::from_params(&m);
        let (ft, ep, cg) = (FtModel::system_g(), EpModel::system_g(), CgModel::system_g());
        let models: [&dyn AppModel; 3] = [&ft, &ep, &cg];
        for app in models {
            let ab = AppBox::of_model(app, n_box, p).expect("NPB models have interval mirrors");
            let enc = evaluate(&mb, &ab, p);
            let a = app.app_params(n, p);
            let t1 = isoee::t1(&m, &a).raw();
            let tp = isoee::tp(&m, &a, p).raw();
            let e1 = isoee::e1(&m, &a).raw();
            let ep = isoee::ep(&m, &a, p).raw();
            prop_assert!(enc.t1.contains(t1), "{}: T1 {t1} outside {}", app.name(), enc.t1);
            prop_assert!(enc.tp.contains(tp), "{}: Tp {tp} outside {}", app.name(), enc.tp);
            prop_assert!(enc.e1.contains(e1), "{}: E1 {e1} outside {}", app.name(), enc.e1);
            prop_assert!(enc.ep.contains(ep), "{}: Ep {ep} outside {}", app.name(), enc.ep);
            if let (Some(ee_box), Ok(ee)) = (enc.ee, isoee::ee(&m, &a, p)) {
                prop_assert!(ee_box.contains(ee), "{}: EE {ee} outside {ee_box}", app.name());
            }
        }
    }
}
