//! Per-rank execution context: work charging and point-to-point messaging.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use netsim::Hockney;
use simcluster::units::Seconds;

use crate::envelope::{Envelope, INTERNAL_TAG_BASE};
use crate::rankcore::RankCore;
use crate::registry::{Registry, Verdict, WaitTarget};
use crate::runtime::RankAbort;
use crate::sched::{SchedGrant, SchedOp};
use crate::stats::Counters;
use crate::trace::{CommEvent, CommLog, CommOp};
use crate::world::World;

/// How often a blocked receive re-checks the wait-for graph.
const DEADLOCK_POLL: Duration = Duration::from_millis(10);

/// The handle a rank's program uses to charge work and communicate.
///
/// Created by [`crate::run`]; one per rank, owned by the rank's thread.
/// All execution-agnostic accounting lives in the embedded
/// [`RankCore`]; this type adds the thread-runtime transport (channels,
/// pending buffers, the deadlock-detection registry).
pub struct Ctx<'w> {
    pub(crate) core: RankCore<'w>,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) receivers: Vec<Receiver<Envelope>>,
    pub(crate) pending: Vec<VecDeque<Envelope>>,
    pub(crate) coll_seq: u64,
    pub(crate) hockney: Hockney,
    pub(crate) registry: Arc<Registry>,
    pub(crate) comm: CommLog,
    pub(crate) vclock: Vec<u64>,
    /// Last stable deadlock observation `(verdict, chain progress)`.
    pub(crate) last_probe: Option<(Verdict, Vec<u64>)>,
}

impl<'w> Ctx<'w> {
    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.core.rank
    }

    /// Number of ranks in the run.
    pub fn size(&self) -> usize {
        self.core.size
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.core.now()
    }

    /// The world this rank runs in.
    pub fn world(&self) -> &World {
        self.core.world
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.core.counters
    }

    // ------------------------------------------------------------------
    // Work charging (delegated to the shared rank core)
    // ------------------------------------------------------------------

    /// Charge `instructions` of on-chip computation (`Wc`): the CPU is busy
    /// for `instructions × tc` with `tc = CPI / f`; wall time is squeezed by
    /// the overlap factor.
    pub fn compute(&mut self, instructions: f64) {
        self.core.compute(instructions);
    }

    /// Charge `accesses` memory accesses against a working set of
    /// `working_set_bytes`.
    ///
    /// The cache model splits the accesses: the on-chip (cache-hit) share is
    /// compute time — the paper's Table 1 defines `tc` as *including on-chip
    /// caches and registers* — and is counted into `Wc` in instruction
    /// equivalents; only the DRAM share is charged as memory time and
    /// counted into `Wm` (that is what Perfmon's off-chip counters see).
    /// Cache latencies are core-clocked, so the on-chip time scales with
    /// `f_nominal / f` under DVFS; DRAM latency does not.
    ///
    /// This is where the simulator is richer than the model's flat `tm`,
    /// and why strong scaling (smaller per-rank working sets) yields the
    /// *negative* parallel memory overheads the paper fits for FT and CG.
    pub fn mem_access(&mut self, accesses: f64, working_set_bytes: u64) {
        self.core.mem_access(accesses, working_set_bytes);
    }

    /// Charge a *streaming* sweep that touches `element_touches` 8-byte-ish
    /// elements of a `working_set_bytes` working set.
    ///
    /// Streaming sweeps (vector updates, FFT passes, CSR traversal) move
    /// whole 64-byte cache lines and enjoy hardware prefetch, so the
    /// *countable* off-chip accesses — what Perfmon's miss counters see and
    /// what the model's `Wm` means — are ≈ 1/8 of the element touches.
    /// Random-access workloads should use [`Ctx::mem_access`] instead.
    pub fn mem_stream(&mut self, element_touches: f64, working_set_bytes: u64) {
        self.core.mem_stream(element_touches, working_set_bytes);
    }

    /// Charge `seconds` of flat local I/O (the paper's `T_IO`; NPB charges
    /// essentially none).
    pub fn io(&mut self, seconds: f64) {
        self.core.io(seconds);
    }

    /// Record a named phase marker at the current virtual time (consumed by
    /// the PowerPack analog for per-phase energy breakdowns). With tracing
    /// enabled the marker also opens a top-level phase span, closing the
    /// previous one.
    pub fn phase(&mut self, name: &str) {
        self.core.phase(name);
    }

    /// Run `body` inside a collective span named `name`, attributing the
    /// messages and bytes it generates to the collective's metrics. With
    /// observability disabled this is one branch on top of `body`.
    pub(crate) fn collective_scope<T>(
        &mut self,
        name: &'static str,
        body: impl FnOnce(&mut Self) -> T,
    ) -> T {
        let scope = self.core.collective_begin(name);
        let out = body(self);
        self.core.collective_end(scope);
        out
    }

    // ------------------------------------------------------------------
    // Point-to-point messaging
    // ------------------------------------------------------------------

    /// Send `data` to rank `to` with a user `tag`.
    ///
    /// Eager semantics: returns after the NIC-busy time; the payload arrives
    /// at the receiver `ts + tw·bytes` after the send started.
    ///
    /// # Panics
    /// Panics on self-sends, out-of-range ranks, or tags ≥ 2³² (reserved
    /// for internal collectives).
    pub fn send<T: Send + 'static>(&mut self, to: usize, tag: u64, data: Vec<T>) {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        self.send_raw(to, tag, data, 2);
    }

    /// Receive the next message from rank `from` carrying `tag`.
    ///
    /// Blocks (in host time) until the message exists; in virtual time the
    /// rank waits — and logs an idle `Wait` segment — only if the arrival
    /// time is in its future.
    ///
    /// # Panics
    /// Panics if the payload's element type does not match `T`, or if the
    /// run deadlocks ([`crate::try_run`] turns that panic into a
    /// [`crate::RunError::Deadlock`] instead).
    pub fn recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        self.recv_raw(from, tag)
    }

    /// Receive the next message carrying `tag` from *any* rank (the
    /// `MPI_ANY_SOURCE` analog). Returns the matched source and payload.
    ///
    /// Unlike [`Ctx::recv`], which is deterministic (per-pair channels are
    /// FIFO), the match order of `recv_any` genuinely depends on the
    /// schedule: two concurrent senders can be matched in either order.
    /// This is exactly the nondeterminism the `verify` crate's
    /// schedule-space explorer enumerates.
    ///
    /// # Panics
    /// Panics on tags ≥ 2³², payload type mismatches, or deadlock (under
    /// [`crate::try_run`] the latter becomes a [`crate::RunError`]).
    pub fn recv_any<T: Send + 'static>(&mut self, tag: u64) -> (usize, Vec<T>) {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        let source = self.permit(SchedOp::RecvAny { tag });
        let env = match source {
            // Controlled run: the scheduler resolved the wildcard to a
            // concrete source whose message is already in flight.
            Some(from) => self.take_envelope(from, tag),
            None => self.take_envelope_any(tag),
        };
        let from = env.src;
        let waited = self.core.account_recv(env.arrival_s);
        for (mine, theirs) in self.vclock.iter_mut().zip(&env.vc) {
            *mine = (*mine).max(*theirs);
        }
        self.vclock[self.core.rank] += 1;
        self.comm.events.push(CommEvent {
            op: CommOp::Recv { from },
            tag,
            bytes: env.bytes,
            time_s: self.now(),
            waited_s: waited.raw(),
            vc: self.vclock.clone(),
        });
        let payload = *env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from rank {from} \
                     ({} bytes)",
                self.core.rank, env.bytes
            )
        });
        (from, payload)
    }

    /// Exchange with a partner: send `data`, then receive the partner's
    /// message with the same tag. Deadlock-free (sends never block).
    pub fn exchange<T: Send + 'static>(
        &mut self,
        partner: usize,
        tag: u64,
        data: Vec<T>,
    ) -> Vec<T> {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        self.exchange_raw(partner, tag, data, 2)
    }

    pub(crate) fn exchange_raw<T: Send + 'static>(
        &mut self,
        partner: usize,
        tag: u64,
        data: Vec<T>,
        concurrency: usize,
    ) -> Vec<T> {
        self.send_raw(partner, tag, data, concurrency);
        self.recv_raw(partner, tag)
    }

    /// Park in the world's scheduler hook (when installed) until `op` is
    /// granted. Returns the grant's wildcard-source choice. An `Abort`
    /// grant unwinds the rank with its partial trace, exactly like a
    /// deadlock abort; `try_run` reports [`crate::RunError::SchedulerAbort`].
    fn permit(&mut self, op: SchedOp) -> Option<usize> {
        let hook = self.core.world.sched.clone()?;
        match hook.permit(self.core.rank, op) {
            SchedGrant::Proceed { source } => source,
            SchedGrant::Abort => {
                self.registry.clear_blocked(self.core.rank);
                self.drain_unconsumed();
                let comm = std::mem::take(&mut self.comm);
                std::panic::panic_any(RankAbort { comm });
            }
        }
    }

    pub(crate) fn send_raw<T: Send + 'static>(
        &mut self,
        to: usize,
        tag: u64,
        data: Vec<T>,
        concurrency: usize,
    ) {
        assert!(
            to < self.core.size,
            "send to rank {to} of {}",
            self.core.size
        );
        assert!(
            to != self.core.rank,
            "self-sends are not allowed (rank {to})"
        );
        self.permit(SchedOp::Send { to, tag });
        let bytes = (std::mem::size_of::<T>() * data.len()) as u64;
        let h = self
            .core
            .world
            .contention
            .effective(&self.hockney, concurrency);
        let t_net = Seconds::new(h.p2p(bytes));
        let arrival = self.core.account_send(bytes, t_net);
        self.vclock[self.core.rank] += 1;
        self.comm.events.push(CommEvent {
            op: CommOp::Send { to },
            tag,
            bytes,
            time_s: self.now(),
            waited_s: 0.0,
            vc: self.vclock.clone(),
        });
        let env = Envelope {
            src: self.core.rank,
            tag,
            arrival_s: arrival.raw(), // full link time, not overlap-squeezed
            bytes,
            vc: self.vclock.clone(),
            payload: Box::new(data),
        };
        self.registry.note_send(self.core.rank, to);
        if self.senders[to].send(env).is_err() {
            self.abort_if_dead();
            panic!("receiver rank {to} hung up — did a rank panic?");
        }
    }

    pub(crate) fn recv_raw<T: Send + 'static>(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(
            from < self.core.size,
            "recv from rank {from} of {}",
            self.core.size
        );
        assert!(from != self.core.rank, "self-receives are not allowed");
        self.permit(SchedOp::Recv { from, tag });
        let env = self.take_envelope(from, tag);
        let waited = self.core.account_recv(env.arrival_s);
        for (mine, theirs) in self.vclock.iter_mut().zip(&env.vc) {
            *mine = (*mine).max(*theirs);
        }
        self.vclock[self.core.rank] += 1;
        self.comm.events.push(CommEvent {
            op: CommOp::Recv { from },
            tag,
            bytes: env.bytes,
            time_s: self.now(),
            waited_s: waited.raw(),
            vc: self.vclock.clone(),
        });
        *env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from rank {from} \
                     ({} bytes)",
                self.core.rank, env.bytes
            )
        })
    }

    /// Pull the first envelope from `from` matching `tag`, buffering any
    /// earlier non-matching messages. While the matching message has not
    /// arrived, the rank registers as blocked and participates in
    /// deadlock detection.
    fn take_envelope(&mut self, from: usize, tag: u64) -> Envelope {
        if let Some(pos) = self.pending[from].iter().position(|e| e.tag == tag) {
            return self.pending[from].remove(pos).expect("position exists");
        }
        self.registry.set_blocked(
            self.core.rank,
            WaitTarget {
                on: Some(from),
                tag,
            },
        );
        self.last_probe = None;
        loop {
            self.abort_if_dead();
            match self.receivers[from].recv_timeout(DEADLOCK_POLL) {
                Ok(env) => {
                    self.registry.note_drain(from, self.core.rank);
                    self.registry.bump_progress(self.core.rank);
                    self.last_probe = None;
                    if env.tag == tag {
                        self.registry.clear_blocked(self.core.rank);
                        return env;
                    }
                    self.pending[from].push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => self.deadlock_check(),
                Err(RecvTimeoutError::Disconnected) => {
                    self.abort_if_dead();
                    // If the awaited sender *finished cleanly*, the message
                    // can never arrive: that is a communication bug (e.g. a
                    // mismatched tag), not a crash. Declare the run dead
                    // with the stuck chain so `try_run` reports it.
                    if let Some((verdict, _)) = self.registry.probe(self.core.rank) {
                        self.registry.declare_dead(verdict);
                        self.abort_if_dead();
                    }
                    panic!(
                        "rank {}: sender rank {from} hung up — did a rank panic?",
                        self.core.rank
                    );
                }
            }
        }
    }

    /// Pull the first envelope matching `tag` from *any* source, buffering
    /// non-matching messages. The blocked registration carries a wildcard
    /// target (`on: None`), so deadlock detection falls back to the
    /// registry's global terminal-state check.
    fn take_envelope_any(&mut self, tag: u64) -> Envelope {
        let sources: Vec<usize> = (0..self.core.size)
            .filter(|&s| s != self.core.rank)
            .collect();
        for &from in &sources {
            if let Some(pos) = self.pending[from].iter().position(|e| e.tag == tag) {
                return self.pending[from].remove(pos).expect("position exists");
            }
        }
        self.registry
            .set_blocked(self.core.rank, WaitTarget { on: None, tag });
        self.last_probe = None;
        loop {
            self.abort_if_dead();
            let mut drained = false;
            let mut disconnected = 0;
            for &from in &sources {
                loop {
                    match self.receivers[from].try_recv() {
                        Ok(env) => {
                            self.registry.note_drain(from, self.core.rank);
                            self.registry.bump_progress(self.core.rank);
                            self.last_probe = None;
                            drained = true;
                            if env.tag == tag {
                                self.registry.clear_blocked(self.core.rank);
                                return env;
                            }
                            self.pending[from].push_back(env);
                        }
                        Err(std::sync::mpsc::TryRecvError::Empty) => break,
                        Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                            disconnected += 1;
                            break;
                        }
                    }
                }
            }
            if drained {
                continue;
            }
            if disconnected == sources.len() {
                self.abort_if_dead();
                // Every possible sender hung up with no match buffered: the
                // awaited message can never arrive (see the sourced-receive
                // disconnect path above for the rationale).
                if let Some((verdict, _)) = self.registry.probe(self.core.rank) {
                    self.registry.declare_dead(verdict);
                    self.abort_if_dead();
                }
                panic!(
                    "rank {}: all senders hung up — did a rank panic?",
                    self.core.rank
                );
            }
            std::thread::sleep(DEADLOCK_POLL);
            self.deadlock_check();
        }
    }

    /// One deadlock-detection poll: walk the wait-for graph and declare the
    /// run dead when the same terminal chain is observed twice in a row
    /// with no progress on any chain member.
    fn deadlock_check(&mut self) {
        let Some((verdict, progress)) = self.registry.probe(self.core.rank) else {
            self.last_probe = None;
            return;
        };
        if let Some((prev_verdict, prev_progress)) = &self.last_probe {
            if *prev_verdict == verdict && *prev_progress == progress {
                self.registry.declare_dead(verdict.clone());
                self.abort_if_dead();
            }
        }
        self.last_probe = Some((verdict, progress));
    }

    /// Unwind this rank with its partial trace if the run has been declared
    /// dead. The payload is caught by [`crate::try_run`].
    fn abort_if_dead(&mut self) {
        if self.registry.is_dead() {
            self.registry.clear_blocked(self.core.rank);
            // Fold buffered-but-unmatched messages into the partial trace:
            // the analyzer infers tag mismatches from them.
            self.drain_unconsumed();
            let comm = std::mem::take(&mut self.comm);
            std::panic::panic_any(RankAbort { comm });
        }
    }

    /// Drain everything still sitting in this rank's inbox into the trace's
    /// `unconsumed` list (called by the runtime after the program returns).
    pub(crate) fn drain_unconsumed(&mut self) {
        for from in 0..self.core.size {
            if from == self.core.rank {
                continue;
            }
            while let Some(env) = self.pending[from].pop_front() {
                self.comm.unconsumed.push((env.src, env.tag, env.bytes));
            }
            while let Ok(env) = self.receivers[from].try_recv() {
                self.comm.unconsumed.push((env.src, env.tag, env.bytes));
            }
        }
    }

    /// Next internal-collective sequence number (same on every rank because
    /// collectives execute in program order).
    pub(crate) fn next_coll_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }
}
