//! Per-rank execution context: work charging and point-to-point messaging.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use netsim::Hockney;
use obs::span::{Category, FieldValue};
use obs::TrackRecorder;
use simcluster::units::{Joules, Seconds};
use simcluster::{Segment, SegmentKind, SegmentLog, VirtualClock};

use crate::envelope::{Envelope, INTERNAL_TAG_BASE};
use crate::registry::{Registry, Verdict, WaitTarget};
use crate::runtime::RankAbort;
use crate::sched::{SchedGrant, SchedOp};
use crate::stats::Counters;
use crate::trace::{CommEvent, CommLog, CommOp};
use crate::world::World;

/// How often a blocked receive re-checks the wait-for graph.
const DEADLOCK_POLL: Duration = Duration::from_millis(10);

/// Cached handles into the global metrics registry, resolved once per
/// rank at context creation so the hot path is a relaxed atomic add.
pub(crate) struct MpsMetrics {
    messages: Arc<obs::Counter>,
    bytes: Arc<obs::Counter>,
    mem_accesses: Arc<obs::Counter>,
    mem_dram: Arc<obs::Counter>,
    cache_hit_ratio: Arc<obs::Gauge>,
    /// Per-collective counters and histograms, cached by name.
    collectives: Vec<(&'static str, CollectiveMetrics)>,
    /// Per-phase wait-time histograms, cached by phase name.
    phase_waits: Vec<(String, Arc<obs::LogHistogram>)>,
}

/// Cached handles for one collective: `(calls, messages, bytes)` counters
/// plus per-call virtual latency and byte-volume histograms.
pub(crate) struct CollectiveMetrics {
    counters: [Arc<obs::Counter>; 3],
    latency: Arc<obs::LogHistogram>,
    bytes_per_call: Arc<obs::LogHistogram>,
}

impl MpsMetrics {
    pub(crate) fn new() -> Self {
        let reg = obs::global();
        Self {
            messages: reg.counter("mps.messages"),
            bytes: reg.counter("mps.bytes"),
            mem_accesses: reg.counter("mps.mem.accesses"),
            mem_dram: reg.counter("mps.mem.dram_accesses"),
            cache_hit_ratio: reg.gauge("mps.mem.cache_hit_ratio"),
            collectives: Vec::new(),
            phase_waits: Vec::new(),
        }
    }

    /// The cached metric handles of collective `name`.
    fn collective(&mut self, name: &'static str) -> &CollectiveMetrics {
        let idx = match self.collectives.iter().position(|(n, _)| *n == name) {
            Some(i) => i,
            None => {
                let reg = obs::global();
                let handles = CollectiveMetrics {
                    counters: [
                        reg.counter(&format!("mps.collective.{name}.calls")),
                        reg.counter(&format!("mps.collective.{name}.messages")),
                        reg.counter(&format!("mps.collective.{name}.bytes")),
                    ],
                    latency: reg.log_histogram(&format!("mps.collective.{name}.latency_s"), "s"),
                    bytes_per_call: reg
                        .log_histogram(&format!("mps.collective.{name}.bytes_per_call"), "B"),
                };
                self.collectives.push((name, handles));
                self.collectives.len() - 1
            }
        };
        &self.collectives[idx].1
    }

    /// The wait-time histogram of the phase named `phase`.
    fn phase_wait(&mut self, phase: &str) -> &Arc<obs::LogHistogram> {
        let idx = match self.phase_waits.iter().position(|(n, _)| n == phase) {
            Some(i) => i,
            None => {
                let hist = obs::global().log_histogram(&format!("mps.phase.{phase}.wait_s"), "s");
                self.phase_waits.push((phase.to_string(), hist));
                self.phase_waits.len() - 1
            }
        };
        &self.phase_waits[idx].1
    }
}

/// The handle a rank's program uses to charge work and communicate.
///
/// Created by [`crate::run`]; one per rank, owned by the rank's thread.
pub struct Ctx<'w> {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    pub(crate) world: &'w World,
    pub(crate) clock: VirtualClock,
    pub(crate) counters: Counters,
    pub(crate) log: SegmentLog,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) receivers: Vec<Receiver<Envelope>>,
    pub(crate) pending: Vec<VecDeque<Envelope>>,
    pub(crate) coll_seq: u64,
    pub(crate) markers: Vec<(String, f64)>,
    pub(crate) hockney: Hockney,
    pub(crate) registry: Arc<Registry>,
    pub(crate) comm: CommLog,
    pub(crate) vclock: Vec<u64>,
    /// Last stable deadlock observation `(verdict, chain progress)`.
    pub(crate) last_probe: Option<(Verdict, Vec<u64>)>,
    /// Span recorder, present only when `world.obs.trace` is set: every
    /// instrumented call site pays one branch when disabled.
    pub(crate) rec: Option<TrackRecorder>,
    /// Cached metric handles, present only when `world.obs.metrics` is set.
    pub(crate) metrics: Option<MpsMetrics>,
    /// Per-kind device delta power `[compute, memory, network, io]` in
    /// watts, precomputed so charge spans carry their energy.
    pub(crate) delta_w: [f64; 4],
}

impl<'w> Ctx<'w> {
    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the run.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now().raw()
    }

    /// The world this rank runs in.
    pub fn world(&self) -> &World {
        self.world
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    // ------------------------------------------------------------------
    // Work charging
    // ------------------------------------------------------------------

    /// Charge `instructions` of on-chip computation (`Wc`): the CPU is busy
    /// for `instructions × tc` with `tc = CPI / f`; wall time is squeezed by
    /// the overlap factor.
    pub fn compute(&mut self, instructions: f64) {
        assert!(
            instructions.is_finite() && instructions >= 0.0,
            "instruction count must be non-negative, got {instructions}"
        );
        if instructions == 0.0 {
            return;
        }
        self.counters.wc += instructions;
        let dur = instructions * self.world.tc();
        self.charge(SegmentKind::Compute, dur);
    }

    /// Charge `accesses` memory accesses against a working set of
    /// `working_set_bytes`.
    ///
    /// The cache model splits the accesses: the on-chip (cache-hit) share is
    /// compute time — the paper's Table 1 defines `tc` as *including on-chip
    /// caches and registers* — and is counted into `Wc` in instruction
    /// equivalents; only the DRAM share is charged as memory time and
    /// counted into `Wm` (that is what Perfmon's off-chip counters see).
    /// Cache latencies are core-clocked, so the on-chip time scales with
    /// `f_nominal / f` under DVFS; DRAM latency does not.
    ///
    /// This is where the simulator is richer than the model's flat `tm`,
    /// and why strong scaling (smaller per-rank working sets) yields the
    /// *negative* parallel memory overheads the paper fits for FT and CG.
    pub fn mem_access(&mut self, accesses: f64, working_set_bytes: u64) {
        assert!(
            accesses.is_finite() && accesses >= 0.0,
            "access count must be non-negative, got {accesses}"
        );
        if accesses == 0.0 {
            return;
        }
        let node = &self.world.cluster.node;
        // Compact rank placement: ranks fill nodes core by core, so up to
        // `cores()` ranks contend for the node's shared cache levels.
        let co_resident = self.size.min(node.cores());
        let prof = node
            .memory
            .access_profile_concurrent(working_set_bytes, co_resident);

        if let Some(metrics) = &self.metrics {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                metrics.mem_accesses.add(accesses as u64);
                metrics.mem_dram.add((accesses * prof.dram_fraction) as u64);
            }
            metrics.cache_hit_ratio.set(1.0 - prof.dram_fraction);
        }

        // Off-chip share: memory workload at flat DRAM latency.
        let dram_accesses = accesses * prof.dram_fraction;
        if dram_accesses > 0.0 {
            self.counters.wm += dram_accesses;
            self.charge(
                SegmentKind::Memory,
                Seconds::new(dram_accesses * node.memory.dram_latency_s),
            );
        }

        // On-chip share: compute time, slowed by DVFS like the core.
        let f_scale = node.cpu.dvfs.nominal() / self.world.f_hz;
        let on_chip_s = accesses * prof.on_chip_s_per_access * f_scale;
        if on_chip_s > 0.0 {
            self.counters.wc += on_chip_s / self.world.tc().raw();
            self.charge(SegmentKind::Compute, Seconds::new(on_chip_s));
        }
    }

    /// Charge a *streaming* sweep that touches `element_touches` 8-byte-ish
    /// elements of a `working_set_bytes` working set.
    ///
    /// Streaming sweeps (vector updates, FFT passes, CSR traversal) move
    /// whole 64-byte cache lines and enjoy hardware prefetch, so the
    /// *countable* off-chip accesses — what Perfmon's miss counters see and
    /// what the model's `Wm` means — are ≈ 1/8 of the element touches.
    /// Random-access workloads should use [`Ctx::mem_access`] instead.
    pub fn mem_stream(&mut self, element_touches: f64, working_set_bytes: u64) {
        const LINE_ELEMS: f64 = 8.0; // 64-byte lines / 8-byte elements
        self.mem_access(element_touches / LINE_ELEMS, working_set_bytes);
    }

    /// Charge `seconds` of flat local I/O (the paper's `T_IO`; NPB charges
    /// essentially none).
    pub fn io(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "I/O time must be non-negative, got {seconds}"
        );
        if seconds == 0.0 {
            return;
        }
        self.counters.io_s += seconds;
        self.charge(SegmentKind::Io, Seconds::new(seconds));
    }

    /// Record a named phase marker at the current virtual time (consumed by
    /// the PowerPack analog for per-phase energy breakdowns). With tracing
    /// enabled the marker also opens a top-level phase span, closing the
    /// previous one.
    pub fn phase(&mut self, name: &str) {
        self.markers.push((name.to_string(), self.now()));
        if let Some(rec) = &mut self.rec {
            let t = self.clock.now().raw();
            rec.begin_phase(name, t);
        }
    }

    /// Push a device-busy segment of `work` seconds, advancing the wall
    /// clock by `α · work`.
    fn charge(&mut self, kind: SegmentKind, work: Seconds) {
        let wall = self.world.alpha * work;
        let start = self.now();
        self.log.push(Segment {
            kind,
            start_s: start,
            wall_s: wall.raw(),
            work_s: work.raw(),
        });
        self.clock.advance(wall);
        if let Some(rec) = &mut self.rec {
            let (cat, delta_w) = match kind {
                SegmentKind::Compute => (Category::Compute, self.delta_w[0]),
                SegmentKind::Memory => (Category::Memory, self.delta_w[1]),
                SegmentKind::Network => (Category::Network, self.delta_w[2]),
                SegmentKind::Io => (Category::Io, self.delta_w[3]),
                SegmentKind::Wait => (Category::Wait, 0.0),
            };
            let end = start + wall.raw();
            rec.leaf(
                cat.name(),
                cat,
                start,
                end,
                vec![
                    ("work_s", FieldValue::Seconds(work)),
                    (
                        "energy_j",
                        FieldValue::Joules(Joules::new(work.raw() * delta_w)),
                    ),
                ],
            );
        }
    }

    /// Push a wait (idle) segment of `dur` wall seconds.
    fn log_wait(&mut self, dur: Seconds) {
        if dur <= Seconds::ZERO {
            return;
        }
        let end = self.now(); // clock already advanced by caller
        self.log.push(Segment {
            kind: SegmentKind::Wait,
            start_s: end - dur.raw(),
            wall_s: dur.raw(),
            work_s: 0.0,
        });
        if let Some(rec) = &mut self.rec {
            rec.leaf(
                Category::Wait.name(),
                Category::Wait,
                end - dur.raw(),
                end,
                vec![],
            );
        }
        if let Some(metrics) = &mut self.metrics {
            let phase = self
                .markers
                .last()
                .map_or("none", |(name, _)| name.as_str());
            metrics.phase_wait(phase).record(dur.raw());
        }
    }

    /// Run `body` inside a collective span named `name`, attributing the
    /// messages and bytes it generates to the collective's metrics. With
    /// observability disabled this is one branch on top of `body`.
    pub(crate) fn collective_scope<T>(
        &mut self,
        name: &'static str,
        body: impl FnOnce(&mut Self) -> T,
    ) -> T {
        if self.rec.is_none() && self.metrics.is_none() {
            return body(self);
        }
        let msgs_before = self.counters.messages;
        let bytes_before = self.counters.bytes;
        let t_start = self.clock.now().raw();
        if let Some(rec) = &mut self.rec {
            rec.enter(name, Category::Collective, t_start);
        }
        let out = body(self);
        let msgs = self.counters.messages - msgs_before;
        let bytes = self.counters.bytes - bytes_before;
        if let Some(rec) = &mut self.rec {
            let t = self.clock.now().raw();
            rec.exit(
                t,
                vec![
                    ("messages", FieldValue::F64(msgs)),
                    ("bytes", FieldValue::F64(bytes)),
                ],
            );
        }
        if let Some(metrics) = &mut self.metrics {
            let t_end = self.clock.now().raw();
            let coll = metrics.collective(name);
            let [calls, messages, bytes_c] = &coll.counters;
            calls.inc();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                messages.add(msgs.max(0.0) as u64);
                bytes_c.add(bytes.max(0.0) as u64);
            }
            coll.latency.record(t_end - t_start);
            coll.bytes_per_call.record(bytes.max(0.0));
        }
        out
    }

    // ------------------------------------------------------------------
    // Point-to-point messaging
    // ------------------------------------------------------------------

    /// Send `data` to rank `to` with a user `tag`.
    ///
    /// Eager semantics: returns after the NIC-busy time; the payload arrives
    /// at the receiver `ts + tw·bytes` after the send started.
    ///
    /// # Panics
    /// Panics on self-sends, out-of-range ranks, or tags ≥ 2³² (reserved
    /// for internal collectives).
    pub fn send<T: Send + 'static>(&mut self, to: usize, tag: u64, data: Vec<T>) {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        self.send_raw(to, tag, data, 2);
    }

    /// Receive the next message from rank `from` carrying `tag`.
    ///
    /// Blocks (in host time) until the message exists; in virtual time the
    /// rank waits — and logs an idle `Wait` segment — only if the arrival
    /// time is in its future.
    ///
    /// # Panics
    /// Panics if the payload's element type does not match `T`, or if the
    /// run deadlocks ([`crate::try_run`] turns that panic into a
    /// [`crate::RunError::Deadlock`] instead).
    pub fn recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        self.recv_raw(from, tag)
    }

    /// Receive the next message carrying `tag` from *any* rank (the
    /// `MPI_ANY_SOURCE` analog). Returns the matched source and payload.
    ///
    /// Unlike [`Ctx::recv`], which is deterministic (per-pair channels are
    /// FIFO), the match order of `recv_any` genuinely depends on the
    /// schedule: two concurrent senders can be matched in either order.
    /// This is exactly the nondeterminism the `verify` crate's
    /// schedule-space explorer enumerates.
    ///
    /// # Panics
    /// Panics on tags ≥ 2³², payload type mismatches, or deadlock (under
    /// [`crate::try_run`] the latter becomes a [`crate::RunError`]).
    pub fn recv_any<T: Send + 'static>(&mut self, tag: u64) -> (usize, Vec<T>) {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        let source = self.permit(SchedOp::RecvAny { tag });
        let env = match source {
            // Controlled run: the scheduler resolved the wildcard to a
            // concrete source whose message is already in flight.
            Some(from) => self.take_envelope(from, tag),
            None => self.take_envelope_any(tag),
        };
        let from = env.src;
        let waited = self.clock.advance_to(Seconds::new(env.arrival_s));
        self.log_wait(waited);
        for (mine, theirs) in self.vclock.iter_mut().zip(&env.vc) {
            *mine = (*mine).max(*theirs);
        }
        self.vclock[self.rank] += 1;
        self.comm.events.push(CommEvent {
            op: CommOp::Recv { from },
            tag,
            bytes: env.bytes,
            time_s: self.now(),
            waited_s: waited.raw(),
            vc: self.vclock.clone(),
        });
        let payload = *env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from rank {from} \
                     ({} bytes)",
                self.rank, env.bytes
            )
        });
        (from, payload)
    }

    /// Exchange with a partner: send `data`, then receive the partner's
    /// message with the same tag. Deadlock-free (sends never block).
    pub fn exchange<T: Send + 'static>(
        &mut self,
        partner: usize,
        tag: u64,
        data: Vec<T>,
    ) -> Vec<T> {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        self.exchange_raw(partner, tag, data, 2)
    }

    pub(crate) fn exchange_raw<T: Send + 'static>(
        &mut self,
        partner: usize,
        tag: u64,
        data: Vec<T>,
        concurrency: usize,
    ) -> Vec<T> {
        self.send_raw(partner, tag, data, concurrency);
        self.recv_raw(partner, tag)
    }

    /// Park in the world's scheduler hook (when installed) until `op` is
    /// granted. Returns the grant's wildcard-source choice. An `Abort`
    /// grant unwinds the rank with its partial trace, exactly like a
    /// deadlock abort; `try_run` reports [`crate::RunError::SchedulerAbort`].
    fn permit(&mut self, op: SchedOp) -> Option<usize> {
        let hook = self.world.sched.clone()?;
        match hook.permit(self.rank, op) {
            SchedGrant::Proceed { source } => source,
            SchedGrant::Abort => {
                self.registry.clear_blocked(self.rank);
                self.drain_unconsumed();
                let comm = std::mem::take(&mut self.comm);
                std::panic::panic_any(RankAbort { comm });
            }
        }
    }

    pub(crate) fn send_raw<T: Send + 'static>(
        &mut self,
        to: usize,
        tag: u64,
        data: Vec<T>,
        concurrency: usize,
    ) {
        assert!(to < self.size, "send to rank {to} of {}", self.size);
        assert!(to != self.rank, "self-sends are not allowed (rank {to})");
        self.permit(SchedOp::Send { to, tag });
        let bytes = (std::mem::size_of::<T>() * data.len()) as u64;
        let h = self.world.contention.effective(&self.hockney, concurrency);
        let t_net = Seconds::new(h.p2p(bytes));
        let start = self.clock.now();
        self.counters.messages += 1.0;
        self.counters.bytes += bytes as f64;
        if let Some(metrics) = &self.metrics {
            metrics.messages.inc();
            metrics.bytes.add(bytes);
        }
        self.charge(SegmentKind::Network, t_net);
        self.vclock[self.rank] += 1;
        self.comm.events.push(CommEvent {
            op: CommOp::Send { to },
            tag,
            bytes,
            time_s: self.now(),
            waited_s: 0.0,
            vc: self.vclock.clone(),
        });
        let env = Envelope {
            src: self.rank,
            tag,
            arrival_s: (start + t_net).raw(), // full link time, not overlap-squeezed
            bytes,
            vc: self.vclock.clone(),
            payload: Box::new(data),
        };
        self.registry.note_send(self.rank, to);
        if self.senders[to].send(env).is_err() {
            self.abort_if_dead();
            panic!("receiver rank {to} hung up — did a rank panic?");
        }
    }

    pub(crate) fn recv_raw<T: Send + 'static>(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(from < self.size, "recv from rank {from} of {}", self.size);
        assert!(from != self.rank, "self-receives are not allowed");
        self.permit(SchedOp::Recv { from, tag });
        let env = self.take_envelope(from, tag);
        let waited = self.clock.advance_to(Seconds::new(env.arrival_s));
        self.log_wait(waited);
        for (mine, theirs) in self.vclock.iter_mut().zip(&env.vc) {
            *mine = (*mine).max(*theirs);
        }
        self.vclock[self.rank] += 1;
        self.comm.events.push(CommEvent {
            op: CommOp::Recv { from },
            tag,
            bytes: env.bytes,
            time_s: self.now(),
            waited_s: waited.raw(),
            vc: self.vclock.clone(),
        });
        *env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from rank {from} \
                     ({} bytes)",
                self.rank, env.bytes
            )
        })
    }

    /// Pull the first envelope from `from` matching `tag`, buffering any
    /// earlier non-matching messages. While the matching message has not
    /// arrived, the rank registers as blocked and participates in
    /// deadlock detection.
    fn take_envelope(&mut self, from: usize, tag: u64) -> Envelope {
        if let Some(pos) = self.pending[from].iter().position(|e| e.tag == tag) {
            return self.pending[from].remove(pos).expect("position exists");
        }
        self.registry.set_blocked(
            self.rank,
            WaitTarget {
                on: Some(from),
                tag,
            },
        );
        self.last_probe = None;
        loop {
            self.abort_if_dead();
            match self.receivers[from].recv_timeout(DEADLOCK_POLL) {
                Ok(env) => {
                    self.registry.note_drain(from, self.rank);
                    self.registry.bump_progress(self.rank);
                    self.last_probe = None;
                    if env.tag == tag {
                        self.registry.clear_blocked(self.rank);
                        return env;
                    }
                    self.pending[from].push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => self.deadlock_check(),
                Err(RecvTimeoutError::Disconnected) => {
                    self.abort_if_dead();
                    // If the awaited sender *finished cleanly*, the message
                    // can never arrive: that is a communication bug (e.g. a
                    // mismatched tag), not a crash. Declare the run dead
                    // with the stuck chain so `try_run` reports it.
                    if let Some((verdict, _)) = self.registry.probe(self.rank) {
                        self.registry.declare_dead(verdict);
                        self.abort_if_dead();
                    }
                    panic!(
                        "rank {}: sender rank {from} hung up — did a rank panic?",
                        self.rank
                    );
                }
            }
        }
    }

    /// Pull the first envelope matching `tag` from *any* source, buffering
    /// non-matching messages. The blocked registration carries a wildcard
    /// target (`on: None`), so deadlock detection falls back to the
    /// registry's global terminal-state check.
    fn take_envelope_any(&mut self, tag: u64) -> Envelope {
        let sources: Vec<usize> = (0..self.size).filter(|&s| s != self.rank).collect();
        for &from in &sources {
            if let Some(pos) = self.pending[from].iter().position(|e| e.tag == tag) {
                return self.pending[from].remove(pos).expect("position exists");
            }
        }
        self.registry
            .set_blocked(self.rank, WaitTarget { on: None, tag });
        self.last_probe = None;
        loop {
            self.abort_if_dead();
            let mut drained = false;
            let mut disconnected = 0;
            for &from in &sources {
                loop {
                    match self.receivers[from].try_recv() {
                        Ok(env) => {
                            self.registry.note_drain(from, self.rank);
                            self.registry.bump_progress(self.rank);
                            self.last_probe = None;
                            drained = true;
                            if env.tag == tag {
                                self.registry.clear_blocked(self.rank);
                                return env;
                            }
                            self.pending[from].push_back(env);
                        }
                        Err(std::sync::mpsc::TryRecvError::Empty) => break,
                        Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                            disconnected += 1;
                            break;
                        }
                    }
                }
            }
            if drained {
                continue;
            }
            if disconnected == sources.len() {
                self.abort_if_dead();
                // Every possible sender hung up with no match buffered: the
                // awaited message can never arrive (see the sourced-receive
                // disconnect path above for the rationale).
                if let Some((verdict, _)) = self.registry.probe(self.rank) {
                    self.registry.declare_dead(verdict);
                    self.abort_if_dead();
                }
                panic!(
                    "rank {}: all senders hung up — did a rank panic?",
                    self.rank
                );
            }
            std::thread::sleep(DEADLOCK_POLL);
            self.deadlock_check();
        }
    }

    /// One deadlock-detection poll: walk the wait-for graph and declare the
    /// run dead when the same terminal chain is observed twice in a row
    /// with no progress on any chain member.
    fn deadlock_check(&mut self) {
        let Some((verdict, progress)) = self.registry.probe(self.rank) else {
            self.last_probe = None;
            return;
        };
        if let Some((prev_verdict, prev_progress)) = &self.last_probe {
            if *prev_verdict == verdict && *prev_progress == progress {
                self.registry.declare_dead(verdict.clone());
                self.abort_if_dead();
            }
        }
        self.last_probe = Some((verdict, progress));
    }

    /// Unwind this rank with its partial trace if the run has been declared
    /// dead. The payload is caught by [`crate::try_run`].
    fn abort_if_dead(&mut self) {
        if self.registry.is_dead() {
            self.registry.clear_blocked(self.rank);
            // Fold buffered-but-unmatched messages into the partial trace:
            // the analyzer infers tag mismatches from them.
            self.drain_unconsumed();
            let comm = std::mem::take(&mut self.comm);
            std::panic::panic_any(RankAbort { comm });
        }
    }

    /// Drain everything still sitting in this rank's inbox into the trace's
    /// `unconsumed` list (called by the runtime after the program returns).
    pub(crate) fn drain_unconsumed(&mut self) {
        for from in 0..self.size {
            if from == self.rank {
                continue;
            }
            while let Some(env) = self.pending[from].pop_front() {
                self.comm.unconsumed.push((env.src, env.tag, env.bytes));
            }
            while let Ok(env) = self.receivers[from].try_recv() {
                self.comm.unconsumed.push((env.src, env.tag, env.bytes));
            }
        }
    }

    /// Next internal-collective sequence number (same on every rank because
    /// collectives execute in program order).
    pub(crate) fn next_coll_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }
}
