//! Per-rank execution context: work charging and point-to-point messaging.

use std::collections::VecDeque;

use crossbeam::channel::{Receiver, Sender};
use netsim::Hockney;
use simcluster::{Segment, SegmentKind, SegmentLog, VirtualClock};

use crate::envelope::{Envelope, INTERNAL_TAG_BASE};
use crate::stats::Counters;
use crate::world::World;

/// The handle a rank's program uses to charge work and communicate.
///
/// Created by [`crate::run`]; one per rank, owned by the rank's thread.
pub struct Ctx<'w> {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    pub(crate) world: &'w World,
    pub(crate) clock: VirtualClock,
    pub(crate) counters: Counters,
    pub(crate) log: SegmentLog,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) receivers: Vec<Receiver<Envelope>>,
    pub(crate) pending: Vec<VecDeque<Envelope>>,
    pub(crate) coll_seq: u64,
    pub(crate) markers: Vec<(String, f64)>,
    pub(crate) hockney: Hockney,
}

impl<'w> Ctx<'w> {
    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the run.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// The world this rank runs in.
    pub fn world(&self) -> &World {
        self.world
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    // ------------------------------------------------------------------
    // Work charging
    // ------------------------------------------------------------------

    /// Charge `instructions` of on-chip computation (`Wc`): the CPU is busy
    /// for `instructions × tc` with `tc = CPI / f`; wall time is squeezed by
    /// the overlap factor.
    pub fn compute(&mut self, instructions: f64) {
        assert!(
            instructions.is_finite() && instructions >= 0.0,
            "instruction count must be non-negative, got {instructions}"
        );
        if instructions == 0.0 {
            return;
        }
        self.counters.wc += instructions;
        let dur = instructions * self.world.tc();
        self.charge(SegmentKind::Compute, dur);
    }

    /// Charge `accesses` memory accesses against a working set of
    /// `working_set_bytes`.
    ///
    /// The cache model splits the accesses: the on-chip (cache-hit) share is
    /// compute time — the paper's Table 1 defines `tc` as *including on-chip
    /// caches and registers* — and is counted into `Wc` in instruction
    /// equivalents; only the DRAM share is charged as memory time and
    /// counted into `Wm` (that is what Perfmon's off-chip counters see).
    /// Cache latencies are core-clocked, so the on-chip time scales with
    /// `f_nominal / f` under DVFS; DRAM latency does not.
    ///
    /// This is where the simulator is richer than the model's flat `tm`,
    /// and why strong scaling (smaller per-rank working sets) yields the
    /// *negative* parallel memory overheads the paper fits for FT and CG.
    pub fn mem_access(&mut self, accesses: f64, working_set_bytes: u64) {
        assert!(
            accesses.is_finite() && accesses >= 0.0,
            "access count must be non-negative, got {accesses}"
        );
        if accesses == 0.0 {
            return;
        }
        let node = &self.world.cluster.node;
        // Compact rank placement: ranks fill nodes core by core, so up to
        // `cores()` ranks contend for the node's shared cache levels.
        let co_resident = self.size.min(node.cores());
        let prof = node
            .memory
            .access_profile_concurrent(working_set_bytes, co_resident);

        // Off-chip share: memory workload at flat DRAM latency.
        let dram_accesses = accesses * prof.dram_fraction;
        if dram_accesses > 0.0 {
            self.counters.wm += dram_accesses;
            self.charge(SegmentKind::Memory, dram_accesses * node.memory.dram_latency_s);
        }

        // On-chip share: compute time, slowed by DVFS like the core.
        let f_scale = node.cpu.dvfs.nominal() / self.world.f_hz;
        let on_chip_s = accesses * prof.on_chip_s_per_access * f_scale;
        if on_chip_s > 0.0 {
            self.counters.wc += on_chip_s / self.world.tc();
            self.charge(SegmentKind::Compute, on_chip_s);
        }
    }

    /// Charge a *streaming* sweep that touches `element_touches` 8-byte-ish
    /// elements of a `working_set_bytes` working set.
    ///
    /// Streaming sweeps (vector updates, FFT passes, CSR traversal) move
    /// whole 64-byte cache lines and enjoy hardware prefetch, so the
    /// *countable* off-chip accesses — what Perfmon's miss counters see and
    /// what the model's `Wm` means — are ≈ 1/8 of the element touches.
    /// Random-access workloads should use [`Ctx::mem_access`] instead.
    pub fn mem_stream(&mut self, element_touches: f64, working_set_bytes: u64) {
        const LINE_ELEMS: f64 = 8.0; // 64-byte lines / 8-byte elements
        self.mem_access(element_touches / LINE_ELEMS, working_set_bytes);
    }

    /// Charge `seconds` of flat local I/O (the paper's `T_IO`; NPB charges
    /// essentially none).
    pub fn io(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "I/O time must be non-negative, got {seconds}"
        );
        if seconds == 0.0 {
            return;
        }
        self.counters.io_s += seconds;
        self.charge(SegmentKind::Io, seconds);
    }

    /// Record a named phase marker at the current virtual time (consumed by
    /// the PowerPack analog for per-phase energy breakdowns).
    pub fn phase(&mut self, name: &str) {
        self.markers.push((name.to_string(), self.clock.now()));
    }

    /// Push a device-busy segment of `work_s` seconds, advancing the wall
    /// clock by `α · work_s`.
    fn charge(&mut self, kind: SegmentKind, work_s: f64) {
        let wall = self.world.alpha * work_s;
        self.log.push(Segment {
            kind,
            start_s: self.clock.now(),
            wall_s: wall,
            work_s,
        });
        self.clock.advance(wall);
    }

    /// Push a wait (idle) segment of `dur` wall seconds.
    fn log_wait(&mut self, dur: f64) {
        if dur <= 0.0 {
            return;
        }
        self.log.push(Segment {
            kind: SegmentKind::Wait,
            start_s: self.clock.now() - dur, // clock already advanced by caller
            wall_s: dur,
            work_s: 0.0,
        });
    }

    // ------------------------------------------------------------------
    // Point-to-point messaging
    // ------------------------------------------------------------------

    /// Send `data` to rank `to` with a user `tag`.
    ///
    /// Eager semantics: returns after the NIC-busy time; the payload arrives
    /// at the receiver `ts + tw·bytes` after the send started.
    ///
    /// # Panics
    /// Panics on self-sends, out-of-range ranks, or tags ≥ 2³² (reserved
    /// for internal collectives).
    pub fn send<T: Send + 'static>(&mut self, to: usize, tag: u64, data: Vec<T>) {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        self.send_raw(to, tag, data, 2);
    }

    /// Receive the next message from rank `from` carrying `tag`.
    ///
    /// Blocks (in host time) until the message exists; in virtual time the
    /// rank waits — and logs an idle `Wait` segment — only if the arrival
    /// time is in its future.
    ///
    /// # Panics
    /// Panics if the payload's element type does not match `T`.
    pub fn recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        self.recv_raw(from, tag)
    }

    /// Exchange with a partner: send `data`, then receive the partner's
    /// message with the same tag. Deadlock-free (sends never block).
    pub fn exchange<T: Send + 'static>(
        &mut self,
        partner: usize,
        tag: u64,
        data: Vec<T>,
    ) -> Vec<T> {
        assert!(tag < INTERNAL_TAG_BASE, "user tags must be < 2^32");
        self.exchange_raw(partner, tag, data, 2)
    }

    pub(crate) fn exchange_raw<T: Send + 'static>(
        &mut self,
        partner: usize,
        tag: u64,
        data: Vec<T>,
        concurrency: usize,
    ) -> Vec<T> {
        self.send_raw(partner, tag, data, concurrency);
        self.recv_raw(partner, tag)
    }

    pub(crate) fn send_raw<T: Send + 'static>(
        &mut self,
        to: usize,
        tag: u64,
        data: Vec<T>,
        concurrency: usize,
    ) {
        assert!(to < self.size, "send to rank {to} of {}", self.size);
        assert!(to != self.rank, "self-sends are not allowed (rank {to})");
        let bytes = (std::mem::size_of::<T>() * data.len()) as u64;
        let h = self.world.contention.effective(&self.hockney, concurrency);
        let t_net = h.p2p(bytes);
        let start = self.clock.now();
        self.counters.messages += 1.0;
        self.counters.bytes += bytes as f64;
        self.charge(SegmentKind::Network, t_net);
        let env = Envelope {
            tag,
            arrival_s: start + t_net, // full link time, not overlap-squeezed
            bytes,
            payload: Box::new(data),
        };
        self.senders[to]
            .send(env)
            .expect("receiver rank hung up — did a rank panic?");
    }

    pub(crate) fn recv_raw<T: Send + 'static>(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(from < self.size, "recv from rank {from} of {}", self.size);
        assert!(from != self.rank, "self-receives are not allowed");
        let env = self.take_envelope(from, tag);
        let waited = self.clock.advance_to(env.arrival_s);
        self.log_wait(waited);
        *env
            .payload
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| {
                panic!(
                    "rank {}: type mismatch receiving tag {tag} from rank {from} \
                     ({} bytes)",
                    self.rank, env.bytes
                )
            })
    }

    /// Pull the first envelope from `from` matching `tag`, buffering any
    /// earlier non-matching messages.
    fn take_envelope(&mut self, from: usize, tag: u64) -> Envelope {
        if let Some(pos) = self.pending[from].iter().position(|e| e.tag == tag) {
            return self.pending[from].remove(pos).expect("position exists");
        }
        loop {
            let env = self.receivers[from]
                .recv()
                .expect("sender rank hung up — did a rank panic?");
            if env.tag == tag {
                return env;
            }
            self.pending[from].push_back(env);
        }
    }

    /// Next internal-collective sequence number (same on every rank because
    /// collectives execute in program order).
    pub(crate) fn next_coll_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }
}
