//! Communication traces: per-rank logs of every send/receive with vector
//! clocks, consumed by the `analyze` crate's communication-graph checker.
//!
//! Every rank maintains a vector clock `vc[0..p]`. Local communication
//! events increment the rank's own component; envelopes carry the sender's
//! clock and receives merge it in (elementwise max) before incrementing.
//! Two events are *concurrent* — neither happened-before the other — iff
//! their clocks are incomparable, which is exactly the condition under
//! which message ordering is scheduler-dependent (a message race).

/// Tags at or above this value are reserved for internal collectives;
/// user-level `send`/`recv` tags are below it.
pub const USER_TAG_LIMIT: u64 = 1 << 32;

/// Direction of a communication event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// A point-to-point (or internal-collective) send to `to`.
    Send {
        /// Destination rank.
        to: usize,
    },
    /// A completed receive from `from`.
    Recv {
        /// Source rank.
        from: usize,
    },
}

/// One traced communication event.
#[derive(Debug, Clone)]
pub struct CommEvent {
    /// Send or receive, with the peer rank.
    pub op: CommOp,
    /// Message tag (user tags are `< 2^32`; internal collectives above).
    pub tag: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Virtual time at which the event completed, in seconds.
    pub time_s: f64,
    /// How long the event blocked the rank's virtual clock: for receives,
    /// the idle time spent waiting for the message's arrival (0 when it
    /// was already delivered); always 0 for sends, which never block.
    /// The `obs::profile` critical-path reconstruction pivots on this.
    pub waited_s: f64,
    /// The rank's vector clock *after* the event.
    pub vc: Vec<u64>,
}

impl CommEvent {
    /// True when `self` happened strictly before `other` (vector-clock
    /// partial order: `self.vc <= other.vc` elementwise and not equal).
    #[must_use]
    pub fn happened_before(&self, other: &CommEvent) -> bool {
        debug_assert_eq!(self.vc.len(), other.vc.len(), "clocks from different runs");
        let mut strictly = false;
        for (a, b) in self.vc.iter().zip(&other.vc) {
            if a > b {
                return false;
            }
            if a < b {
                strictly = true;
            }
        }
        strictly
    }

    /// True when neither event happened-before the other.
    #[must_use]
    pub fn concurrent_with(&self, other: &CommEvent) -> bool {
        !self.happened_before(other) && !other.happened_before(self)
    }
}

/// The full communication trace of one rank.
#[derive(Debug, Clone, Default)]
pub struct CommLog {
    /// Rank that produced the trace.
    pub rank: usize,
    /// Events in program order.
    pub events: Vec<CommEvent>,
    /// Messages still sitting in this rank's inbox when it finished:
    /// `(source, tag, bytes)` triples that were sent but never received.
    pub unconsumed: Vec<(usize, u64, u64)>,
}

impl CommLog {
    /// An empty trace for `rank`.
    #[must_use]
    pub fn new(rank: usize) -> Self {
        Self {
            rank,
            events: Vec::new(),
            unconsumed: Vec::new(),
        }
    }

    /// Iterate over send events only.
    pub fn sends(&self) -> impl Iterator<Item = &CommEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.op, CommOp::Send { .. }))
    }

    /// Iterate over receive events only.
    pub fn recvs(&self) -> impl Iterator<Item = &CommEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.op, CommOp::Recv { .. }))
    }
}

/// An edge in the wait-for graph: `from_rank` is blocked in a receive on
/// `on_rank` with `tag`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked rank.
    pub from_rank: usize,
    /// The rank it waits for a message from; `None` for a wildcard
    /// receive ([`crate::Ctx::recv_any`]), which any rank could satisfy.
    pub on_rank: Option<usize>,
    /// The tag it waits for.
    pub tag: u64,
}

impl std::fmt::Display for WaitEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.on_rank {
            Some(on) => write!(
                f,
                "rank {} waits on rank {} (tag {})",
                self.from_rank, on, self.tag
            ),
            None => write!(
                f,
                "rank {} waits on any rank (tag {})",
                self.from_rank, self.tag
            ),
        }
    }
}

/// Why a run could not complete.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The wait-for graph reached a terminal state: either a cycle of
    /// blocked ranks, or a chain ending at a rank that already finished
    /// (so the awaited message can never be sent).
    Deadlock(DeadlockInfo),
    /// An installed [`crate::sched::SchedulerHook`] granted
    /// [`crate::sched::SchedGrant::Abort`]: the controller tore the run
    /// down (schedule-space exploration cutting a branch short, or the
    /// controller's own deadlock verdict). Carries the partial per-rank
    /// communication traces collected up to the teardown.
    SchedulerAbort {
        /// Partial communication traces, indexed by rank.
        comm: Vec<CommLog>,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock(info) => write!(f, "{info}"),
            RunError::SchedulerAbort { comm } => {
                write!(
                    f,
                    "run aborted by its scheduler hook ({} ranks)",
                    comm.len()
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Details of a detected deadlock.
#[derive(Debug, Clone)]
pub struct DeadlockInfo {
    /// The blocked chain that triggered detection, in wait order. For a
    /// cyclic deadlock the last edge waits on the first edge's rank; for a
    /// stuck chain the last edge waits on a finished rank.
    pub edges: Vec<WaitEdge>,
    /// True when the chain closes into a cycle; false when it ends at a
    /// finished rank.
    pub cyclic: bool,
    /// Partial communication traces collected from every rank (finished
    /// ranks contribute complete traces).
    pub comm: Vec<CommLog>,
}

impl std::fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cyclic {
            write!(f, "deadlock cycle: ")?;
        } else {
            write!(f, "ranks stuck waiting on a finished rank: ")?;
        }
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(vc: &[u64]) -> CommEvent {
        CommEvent {
            op: CommOp::Send { to: 0 },
            tag: 0,
            bytes: 0,
            time_s: 0.0,
            waited_s: 0.0,
            vc: vc.to_vec(),
        }
    }

    #[test]
    fn happened_before_is_strict_partial_order() {
        let a = ev(&[1, 0]);
        let b = ev(&[2, 1]);
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
        assert!(!a.happened_before(&a));
    }

    #[test]
    fn incomparable_clocks_are_concurrent() {
        let a = ev(&[2, 0]);
        let b = ev(&[0, 2]);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
    }

    #[test]
    fn equal_clocks_are_concurrent_but_not_ordered() {
        let a = ev(&[1, 1]);
        let b = ev(&[1, 1]);
        assert!(!a.happened_before(&b));
        assert!(a.concurrent_with(&b));
    }

    #[test]
    fn wait_edge_displays_ranks_and_tag() {
        let e = WaitEdge {
            from_rank: 1,
            on_rank: Some(0),
            tag: 7,
        };
        assert_eq!(e.to_string(), "rank 1 waits on rank 0 (tag 7)");
    }

    #[test]
    fn wildcard_wait_edge_displays_any() {
        let e = WaitEdge {
            from_rank: 2,
            on_rank: None,
            tag: 3,
        };
        assert_eq!(e.to_string(), "rank 2 waits on any rank (tag 3)");
    }
}
