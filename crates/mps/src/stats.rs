//! Per-rank workload counters — the quantities the paper measures with
//! Perfmon (on/off-chip workloads) and TAU/PMPI (message and byte counts).

use std::ops::AddAssign;

/// Counters accumulated by one rank during a run.
///
/// These are the raw inputs to the application-dependent parameter vector
/// `Appl(p, n) = (α, Wc, Wm, Woc, Wom, M, B)` of the paper's Table 2: the
/// calibration pipeline (`isoee::calibrate`) derives the overhead terms by
/// differencing parallel and sequential counter totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// On-chip computation workload `Wc` (instructions).
    pub wc: f64,
    /// Off-chip memory access workload `Wm` (accesses).
    pub wm: f64,
    /// Messages sent `M`.
    pub messages: f64,
    /// Bytes sent `B`.
    pub bytes: f64,
    /// Flat I/O time charged (seconds; the paper's `T_IO`, ≈ 0 for NPB).
    pub io_s: f64,
}

impl AddAssign<&Counters> for Counters {
    fn add_assign(&mut self, rhs: &Counters) {
        self.wc += rhs.wc;
        self.wm += rhs.wm;
        self.messages += rhs.messages;
        self.bytes += rhs.bytes;
        self.io_s += rhs.io_s;
    }
}

impl Counters {
    /// Sum of a slice of counters (the paper's "all-processor" totals in
    /// Eqs. 15–16).
    pub fn total<'a>(items: impl IntoIterator<Item = &'a Counters>) -> Counters {
        let mut out = Counters::default();
        for c in items {
            out += c;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = Counters {
            wc: 1.0,
            wm: 2.0,
            messages: 3.0,
            bytes: 4.0,
            io_s: 5.0,
        };
        let b = Counters {
            wc: 10.0,
            wm: 20.0,
            messages: 30.0,
            bytes: 40.0,
            io_s: 50.0,
        };
        a += &b;
        assert_eq!(
            a,
            Counters {
                wc: 11.0,
                wm: 22.0,
                messages: 33.0,
                bytes: 44.0,
                io_s: 55.0
            }
        );
    }

    #[test]
    fn total_over_slice() {
        let xs = vec![
            Counters {
                wc: 1.0,
                ..Default::default()
            },
            Counters {
                wc: 2.0,
                messages: 1.0,
                ..Default::default()
            },
        ];
        let t = Counters::total(&xs);
        assert_eq!(t.wc, 3.0);
        assert_eq!(t.messages, 1.0);
    }

    #[test]
    fn default_is_zero() {
        let c = Counters::default();
        assert_eq!(c.wc + c.wm + c.messages + c.bytes + c.io_s, 0.0);
    }
}
