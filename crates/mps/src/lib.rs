//! # mps — a simulated message-passing substrate
//!
//! An MPI-like programming model whose *data* really moves (ranks are
//! threads, messages are typed payloads over channels) but whose *time* is
//! virtual: every rank carries a [`simcluster::VirtualClock`] advanced by
//! explicit work charges (compute instructions, memory accesses) and by
//! Hockney-model message costs. This is the execution substrate for the NPB
//! kernels, standing in for MPICH2-over-InfiniBand/Ethernet on the paper's
//! clusters.
//!
//! ## Programming model
//!
//! ```
//! use mps::{World, run};
//! use simcluster::system_g;
//!
//! let world = World::new(system_g(), 2.8e9);
//! let report = run(&world, 4, |ctx| {
//!     ctx.compute(1e6);                       // 1e6 on-chip instructions
//!     ctx.mem_access(1e4, 1 << 20);           // 1e4 accesses, 1 MiB working set
//!     let sum = ctx.allreduce_sum(&[ctx.rank() as f64]);
//!     sum[0]
//! });
//! assert!(report.ranks.iter().all(|r| r.result == 6.0)); // 0+1+2+3
//! ```
//!
//! The returned [`RunReport`] carries, per rank, the workload counters the
//! paper measures with Perfmon/TAU (`Wc`, `Wm`, `M`, `B`), the typed
//! activity log ([`simcluster::SegmentLog`]) the energy meter and PowerPack
//! analog consume, and the rank's finish time.
//!
//! ## Timing protocol
//!
//! * Eager sends: the sender's NIC is busy for the full Hockney time
//!   `ts + tw·bytes` (inflated by [`netsim::ContentionModel`] during
//!   collectives); the message *arrives* at `send_start + t_net`.
//! * A receiver blocked before the arrival logs a `Wait` segment — waits are
//!   idle power only, never squeezed by the overlap factor.
//! * The overlap factor `α` (paper §VI.F) squeezes the wall duration of
//!   work segments while leaving device-busy time intact, matching the
//!   paper's treatment in Eqs. 6/13/15.
//!
//! Simulations are deterministic: each rank's virtual clock depends only on
//! its own program order and received timestamps (a conservative parallel
//! discrete-event scheme), never on host scheduling.

#![forbid(unsafe_code)]

mod collect;
mod ctx;
mod envelope;
mod rankcore;
mod registry;
mod runtime;
pub mod sched;
mod stats;
pub mod trace;
mod world;

pub use collect::ReduceOp;
pub use ctx::Ctx;
pub use envelope::internal_tag;
pub use rankcore::{CollScope, FinishedRank, RankCore};
pub use runtime::{run, try_run, RankOutcome, RunReport};
pub use sched::{SchedGrant, SchedOp, SchedulerHook};
pub use stats::Counters;
pub use trace::{CommEvent, CommLog, CommOp, DeadlockInfo, RunError, WaitEdge, USER_TAG_LIMIT};
pub use world::World;
