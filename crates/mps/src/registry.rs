//! Shared run state for deadlock detection.
//!
//! Every rank registers in a [`Registry`] what it is blocked on; blocked
//! ranks periodically walk the wait-for graph. A run is declared dead when
//! a chain of blocked ranks either closes into a cycle or ends at a rank
//! that already finished, *and* the observation is stable across two
//! consecutive polls (no rank in the chain made progress in between) — the
//! stability requirement rules out transiently-observed chains while a
//! message is still being delivered by the host scheduler. A chain is also
//! never declared dead while any member still has an undelivered envelope
//! from the rank it waits on (per-channel send/drain counters): a starved
//! thread that simply hasn't been scheduled to pull its message must not
//! read as deadlocked, however long the host keeps it off-CPU.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::WaitEdge;

/// What a blocked rank is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WaitTarget {
    /// The rank the message must come from; `None` for a wildcard receive
    /// (`recv_any`), which any rank's send could satisfy.
    pub on: Option<usize>,
    /// The tag the receive requires.
    pub tag: u64,
}

/// The verdict of a deadlock check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Verdict {
    /// Blocked chain starting at the detecting rank.
    pub edges: Vec<WaitEdge>,
    /// Whether the chain closes into a cycle (vs. ending at a finished rank).
    pub cyclic: bool,
}

/// Shared (across ranks of one run) deadlock-detection state.
pub(crate) struct Registry {
    /// Rank count of the run.
    p: usize,
    /// `blocked[r]` is `Some(target)` while rank `r` is inside a blocking
    /// receive with an empty matching inbox.
    blocked: Mutex<Vec<Option<WaitTarget>>>,
    /// Set once rank `r`'s program returned.
    finished: Vec<AtomicBool>,
    /// Incremented every time rank `r` pulls an envelope off a channel.
    progress: Vec<AtomicU64>,
    /// `sent[from * p + to]`: envelopes handed to the `from -> to` channel.
    sent: Vec<AtomicU64>,
    /// `drained[from * p + to]`: envelopes rank `to` pulled off that channel.
    drained: Vec<AtomicU64>,
    /// Set when a deadlock has been declared; all ranks must abort.
    dead: AtomicBool,
    /// The confirmed verdict (first writer wins).
    verdict: Mutex<Option<Verdict>>,
}

impl Registry {
    pub(crate) fn new(p: usize) -> Self {
        Self {
            p,
            blocked: Mutex::new(vec![None; p]),
            finished: (0..p).map(|_| AtomicBool::new(false)).collect(),
            progress: (0..p).map(|_| AtomicU64::new(0)).collect(),
            sent: (0..p * p).map(|_| AtomicU64::new(0)).collect(),
            drained: (0..p * p).map(|_| AtomicU64::new(0)).collect(),
            dead: AtomicBool::new(false),
            verdict: Mutex::new(None),
        }
    }

    /// Record an envelope handed to the `from -> to` channel. Called by the
    /// sender *before* the channel push, so [`Self::probe`] can never
    /// observe the channel as caught-up while an envelope is in flight.
    pub(crate) fn note_send(&self, from: usize, to: usize) {
        self.sent[from * self.p + to].fetch_add(1, Ordering::SeqCst);
    }

    /// Record rank `to` pulling an envelope off the `from -> to` channel.
    pub(crate) fn note_drain(&self, from: usize, to: usize) {
        self.drained[from * self.p + to].fetch_add(1, Ordering::SeqCst);
    }

    /// Whether the `from -> to` channel holds an envelope rank `to` has not
    /// yet pulled.
    fn undelivered(&self, from: usize, to: usize) -> bool {
        let idx = from * self.p + to;
        self.sent[idx].load(Ordering::SeqCst) > self.drained[idx].load(Ordering::SeqCst)
    }

    pub(crate) fn set_blocked(&self, rank: usize, target: WaitTarget) {
        self.blocked.lock().expect("registry poisoned")[rank] = Some(target);
    }

    pub(crate) fn clear_blocked(&self, rank: usize) {
        self.blocked.lock().expect("registry poisoned")[rank] = None;
    }

    pub(crate) fn mark_finished(&self, rank: usize) {
        self.finished[rank].store(true, Ordering::SeqCst);
    }

    pub(crate) fn bump_progress(&self, rank: usize) {
        self.progress[rank].fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    pub(crate) fn take_verdict(&self) -> Option<Verdict> {
        self.verdict.lock().expect("registry poisoned").clone()
    }

    /// Declare the run dead with `verdict` (first declaration wins).
    pub(crate) fn declare_dead(&self, verdict: Verdict) {
        let mut slot = self.verdict.lock().expect("registry poisoned");
        if slot.is_none() {
            *slot = Some(verdict);
        }
        drop(slot);
        self.dead.store(true, Ordering::SeqCst);
    }

    /// Walk the wait-for graph from `start`. Returns a candidate verdict
    /// plus the progress counters of the chain's ranks (for the stability
    /// check), or `None` when some rank on the chain is still runnable.
    pub(crate) fn probe(&self, start: usize) -> Option<(Verdict, Vec<u64>)> {
        let blocked = self.blocked.lock().expect("registry poisoned").clone();
        let mut chain: Vec<WaitEdge> = Vec::new();
        let mut on_chain = vec![false; blocked.len()];
        let mut cur = start;
        loop {
            let target = blocked[cur]?;
            let Some(on) = target.on else {
                // Wildcard receive: the chain walk cannot continue (any rank
                // could satisfy it), so fall back to a global check.
                return self.probe_wildcard(&blocked, chain, cur, target.tag);
            };
            // An envelope from the awaited rank already sits in `cur`'s
            // channel: `cur` will pull it as soon as the host scheduler runs
            // it, so the chain is not dead — it only *looks* stable because
            // a starved thread hasn't been scheduled between polls. Without
            // this check a loaded single-core host can false-positive on a
            // send that landed while both ranks were registered blocked.
            if self.undelivered(on, cur) {
                return None;
            }
            chain.push(WaitEdge {
                from_rank: cur,
                on_rank: Some(on),
                tag: target.tag,
            });
            if self.finished[on].load(Ordering::SeqCst) {
                let progress = self.chain_progress(&chain);
                return Some((
                    Verdict {
                        edges: chain,
                        cyclic: false,
                    },
                    progress,
                ));
            }
            on_chain[cur] = true;
            if on_chain[on] {
                // Trim the prefix that leads into (but is not part of) the
                // cycle so the reported edges are exactly the cycle.
                let pos = chain
                    .iter()
                    .position(|e| e.from_rank == on)
                    .expect("cycle entry on chain");
                let cycle: Vec<WaitEdge> = chain[pos..].to_vec();
                let progress = self.chain_progress(&cycle);
                return Some((
                    Verdict {
                        edges: cycle,
                        cyclic: true,
                    },
                    progress,
                ));
            }
            cur = on;
        }
    }

    /// Global terminal-state check reached when the chain walk hits a
    /// wildcard receive at `cur`. A wildcard wait is only dead when *no*
    /// rank can ever satisfy it: either every other rank finished (stuck
    /// chain), or every unfinished rank is itself blocked with no envelope
    /// in flight toward any blocked rank (global deadlock).
    fn probe_wildcard(
        &self,
        blocked: &[Option<WaitTarget>],
        mut chain: Vec<WaitEdge>,
        cur: usize,
        tag: u64,
    ) -> Option<(Verdict, Vec<u64>)> {
        // Anything already in flight toward `cur` will wake it.
        if (0..self.p).any(|src| src != cur && self.undelivered(src, cur)) {
            return None;
        }
        chain.push(WaitEdge {
            from_rank: cur,
            on_rank: None,
            tag,
        });
        if (0..self.p)
            .filter(|&r| r != cur)
            .all(|r| self.finished[r].load(Ordering::SeqCst))
        {
            let progress = self.chain_progress(&chain);
            return Some((
                Verdict {
                    edges: chain,
                    cyclic: false,
                },
                progress,
            ));
        }
        // Global deadlock: every rank finished or blocked, and no blocked
        // rank has an undelivered envelope that could wake it.
        for (r, slot) in blocked.iter().enumerate() {
            if self.finished[r].load(Ordering::SeqCst) {
                continue;
            }
            if slot.is_none() {
                return None;
            }
            if (0..self.p).any(|src| src != r && self.undelivered(src, r)) {
                return None;
            }
        }
        for (r, slot) in blocked.iter().enumerate() {
            if r == cur
                || self.finished[r].load(Ordering::SeqCst)
                || chain.iter().any(|e| e.from_rank == r)
            {
                continue;
            }
            let t = slot.expect("unfinished ranks are blocked here");
            chain.push(WaitEdge {
                from_rank: r,
                on_rank: t.on,
                tag: t.tag,
            });
        }
        let progress = self.chain_progress(&chain);
        Some((
            Verdict {
                edges: chain,
                cyclic: true,
            },
            progress,
        ))
    }

    fn chain_progress(&self, edges: &[WaitEdge]) -> Vec<u64> {
        edges
            .iter()
            .map(|e| self.progress[e.from_rank].load(Ordering::SeqCst))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_finds_two_cycle() {
        let r = Registry::new(2);
        r.set_blocked(
            0,
            WaitTarget {
                on: Some(1),
                tag: 5,
            },
        );
        r.set_blocked(
            1,
            WaitTarget {
                on: Some(0),
                tag: 6,
            },
        );
        let (v, _) = r.probe(0).expect("cycle");
        assert!(v.cyclic);
        assert_eq!(v.edges.len(), 2);
        assert_eq!(
            v.edges[0],
            WaitEdge {
                from_rank: 0,
                on_rank: Some(1),
                tag: 5
            }
        );
        assert_eq!(
            v.edges[1],
            WaitEdge {
                from_rank: 1,
                on_rank: Some(0),
                tag: 6
            }
        );
    }

    #[test]
    fn probe_reports_chain_into_cycle_as_just_the_cycle() {
        let r = Registry::new(3);
        r.set_blocked(
            0,
            WaitTarget {
                on: Some(1),
                tag: 1,
            },
        );
        r.set_blocked(
            1,
            WaitTarget {
                on: Some(2),
                tag: 2,
            },
        );
        r.set_blocked(
            2,
            WaitTarget {
                on: Some(1),
                tag: 3,
            },
        );
        let (v, _) = r.probe(0).expect("cycle");
        assert!(v.cyclic);
        assert_eq!(v.edges.len(), 2, "prefix rank 0 is not part of the cycle");
        assert!(v.edges.iter().all(|e| e.from_rank != 0));
    }

    #[test]
    fn undelivered_envelope_suppresses_the_verdict() {
        // Rank 1 sent to rank 0, then blocked on rank 0; rank 0 is blocked
        // on rank 1 but has not been scheduled to pull the envelope. The
        // apparent 0 <-> 1 cycle must NOT be reported until the envelope is
        // drained (at which point either rank 0 progresses or the cycle is
        // real).
        let r = Registry::new(2);
        r.set_blocked(
            0,
            WaitTarget {
                on: Some(1),
                tag: 5,
            },
        );
        r.note_send(1, 0);
        r.set_blocked(
            1,
            WaitTarget {
                on: Some(0),
                tag: 6,
            },
        );
        assert!(r.probe(0).is_none(), "in-flight envelope into rank 0");
        assert!(r.probe(1).is_none(), "same chain probed from rank 1");
        r.note_drain(1, 0);
        let (v, _) = r.probe(0).expect("drained channel, cycle is real");
        assert!(v.cyclic);
    }

    #[test]
    fn probe_detects_wait_on_finished_rank() {
        let r = Registry::new(2);
        r.mark_finished(0);
        r.set_blocked(
            1,
            WaitTarget {
                on: Some(0),
                tag: 7,
            },
        );
        let (v, _) = r.probe(1).expect("stuck");
        assert!(!v.cyclic);
        assert_eq!(
            v.edges,
            vec![WaitEdge {
                from_rank: 1,
                on_rank: Some(0),
                tag: 7
            }]
        );
    }

    #[test]
    fn probe_returns_none_while_a_chain_rank_runs() {
        let r = Registry::new(3);
        r.set_blocked(
            0,
            WaitTarget {
                on: Some(1),
                tag: 1,
            },
        );
        // Rank 1 is running (not blocked): no verdict.
        assert!(r.probe(0).is_none());
    }
}
