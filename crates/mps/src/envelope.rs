//! Internal message representation.

use std::any::Any;

/// A message in flight between two ranks.
///
/// The payload is type-erased; [`crate::Ctx::recv`] downcasts it back to the
/// concrete `Vec<T>` and panics loudly on a type mismatch (which is always a
/// programming error — tags exist to catch exactly this).
pub(crate) struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// User (or internal-collective) tag.
    pub tag: u64,
    /// Virtual time at which the transfer completes and the payload becomes
    /// available to the receiver.
    pub arrival_s: f64,
    /// Payload size in bytes (for diagnostics; counted at the sender).
    pub bytes: u64,
    /// The sender's vector clock at send time (for race analysis).
    pub vc: Vec<u64>,
    /// The data, as `Box<Vec<T>>` behind `dyn Any`.
    pub payload: Box<dyn Any + Send>,
}

/// Tags at or above this value are reserved for internal collectives.
pub(crate) const INTERNAL_TAG_BASE: u64 = crate::trace::USER_TAG_LIMIT;

/// Build an internal-collective tag from a per-rank collective sequence
/// number and a round index. All ranks execute collectives in the same
/// program order, so sequence numbers agree across ranks and consecutive
/// collectives can never cross-talk.
///
/// Public so that static analyzers (the `plan` crate) can mirror the
/// collective algorithms' tag choices exactly without duplicating the
/// constant; user programs must stay below [`crate::USER_TAG_LIMIT`] and
/// never construct these.
pub fn internal_tag(seq: u64, round: u32) -> u64 {
    INTERNAL_TAG_BASE | (seq << 8) | u64::from(round)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_tags_never_collide_with_user_tags() {
        assert!(internal_tag(0, 0) >= INTERNAL_TAG_BASE);
        assert!(internal_tag(12345, 255) >= INTERNAL_TAG_BASE);
    }

    #[test]
    fn internal_tags_distinct_per_seq_and_round() {
        assert_ne!(internal_tag(1, 0), internal_tag(1, 1));
        assert_ne!(internal_tag(1, 0), internal_tag(2, 0));
    }
}
