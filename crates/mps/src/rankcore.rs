//! Rank-local accounting core shared by the thread runtime and `simrt`.
//!
//! A [`RankCore`] owns everything a simulated rank accumulates that does
//! *not* depend on how the rank is executed: the virtual clock, workload
//! counters, the typed segment log the energy meter consumes, phase
//! markers, the optional obs span recorder and cached metric handles, and
//! the per-kind device delta powers. [`crate::Ctx`] embeds one and adds the
//! thread-runtime transport (channels, pending buffers, deadlock registry);
//! the `simrt` event engine drives one directly per rank task, so work
//! charges, wait accounting, and collective metrics are bit-identical
//! across the two runtimes by construction.
//!
//! The core has two fidelity modes. In *detail* mode (the thread runtime,
//! and the engine at small `p`) every charge pushes a [`Segment`] and
//! mirrors into the span recorder exactly as `Ctx` always has. With detail
//! off (the engine at `p` in the thousands) charges only accumulate per-kind
//! `(wall, work)` sums; [`RankCore::finish`] then synthesizes one stacked
//! segment per kind whose walls sum to the rank's finish time, which is
//! enough for [`simcluster::EnergyMeter`] — energy is linear in per-kind
//! work plus span — at a few dozen bytes per rank instead of a full log.

use obs::span::{Category, FieldValue};
use obs::TrackRecorder;
use simcluster::units::{Joules, Seconds};
use simcluster::{Segment, SegmentKind, SegmentLog, VirtualClock};
use std::sync::Arc;

use crate::stats::Counters;
use crate::world::World;

/// Cached handles into the global metrics registry, resolved once per
/// rank at context creation so the hot path is a relaxed atomic add.
pub(crate) struct MpsMetrics {
    pub(crate) messages: Arc<obs::Counter>,
    pub(crate) bytes: Arc<obs::Counter>,
    mem_accesses: Arc<obs::Counter>,
    mem_dram: Arc<obs::Counter>,
    cache_hit_ratio: Arc<obs::Gauge>,
    /// Per-collective counters and histograms, cached by name.
    collectives: Vec<(&'static str, CollectiveMetrics)>,
    /// Per-phase wait-time histograms, cached by phase name.
    phase_waits: Vec<(String, Arc<obs::LogHistogram>)>,
}

/// Cached handles for one collective: `(calls, messages, bytes)` counters
/// plus per-call virtual latency and byte-volume histograms.
pub(crate) struct CollectiveMetrics {
    counters: [Arc<obs::Counter>; 3],
    latency: Arc<obs::LogHistogram>,
    bytes_per_call: Arc<obs::LogHistogram>,
}

impl MpsMetrics {
    pub(crate) fn new() -> Self {
        let reg = obs::global();
        Self {
            messages: reg.counter("mps.messages"),
            bytes: reg.counter("mps.bytes"),
            mem_accesses: reg.counter("mps.mem.accesses"),
            mem_dram: reg.counter("mps.mem.dram_accesses"),
            cache_hit_ratio: reg.gauge("mps.mem.cache_hit_ratio"),
            collectives: Vec::new(),
            phase_waits: Vec::new(),
        }
    }

    /// The cached metric handles of collective `name`.
    fn collective(&mut self, name: &'static str) -> &CollectiveMetrics {
        let idx = match self.collectives.iter().position(|(n, _)| *n == name) {
            Some(i) => i,
            None => {
                let reg = obs::global();
                let handles = CollectiveMetrics {
                    counters: [
                        reg.counter(&format!("mps.collective.{name}.calls")),
                        reg.counter(&format!("mps.collective.{name}.messages")),
                        reg.counter(&format!("mps.collective.{name}.bytes")),
                    ],
                    latency: reg.log_histogram(&format!("mps.collective.{name}.latency_s"), "s"),
                    bytes_per_call: reg
                        .log_histogram(&format!("mps.collective.{name}.bytes_per_call"), "B"),
                };
                self.collectives.push((name, handles));
                self.collectives.len() - 1
            }
        };
        &self.collectives[idx].1
    }

    /// The wait-time histogram of the phase named `phase`.
    fn phase_wait(&mut self, phase: &str) -> &Arc<obs::LogHistogram> {
        let idx = match self.phase_waits.iter().position(|(n, _)| n == phase) {
            Some(i) => i,
            None => {
                let hist = obs::global().log_histogram(&format!("mps.phase.{phase}.wait_s"), "s");
                self.phase_waits.push((phase.to_string(), hist));
                self.phase_waits.len() - 1
            }
        };
        &self.phase_waits[idx].1
    }
}

/// An open collective span, returned by [`RankCore::collective_begin`] and
/// closed by [`RankCore::collective_end`]. Inactive (a no-op pair) when
/// neither tracing nor metrics are enabled.
pub struct CollScope {
    name: &'static str,
    active: bool,
    msgs_before: f64,
    bytes_before: f64,
    t_start: f64,
}

/// What a finished rank hands back to its runtime.
pub struct FinishedRank {
    /// Workload counters (`Wc`, `Wm`, `M`, `B`, `T_IO`).
    pub stats: Counters,
    /// Coalesced activity log (synthetic per-kind segments in aggregate
    /// mode).
    pub log: SegmentLog,
    /// Virtual finish time, seconds.
    pub finish_s: f64,
    /// Phase markers `(name, virtual time)`.
    pub markers: Vec<(String, f64)>,
    /// The rank's span track, when tracing was enabled.
    pub track: Option<obs::TrackTrace>,
}

/// Index into the per-kind aggregation table (`SegmentKind` order).
fn kind_index(kind: SegmentKind) -> usize {
    match kind {
        SegmentKind::Compute => 0,
        SegmentKind::Memory => 1,
        SegmentKind::Network => 2,
        SegmentKind::Io => 3,
        SegmentKind::Wait => 4,
    }
}

const AGG_KINDS: [SegmentKind; 5] = [
    SegmentKind::Compute,
    SegmentKind::Memory,
    SegmentKind::Network,
    SegmentKind::Io,
    SegmentKind::Wait,
];

/// The execution-agnostic state of one simulated rank.
pub struct RankCore<'w> {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    pub(crate) world: &'w World,
    pub(crate) clock: VirtualClock,
    pub(crate) counters: Counters,
    pub(crate) log: SegmentLog,
    pub(crate) markers: Vec<(String, f64)>,
    /// Span recorder, present only when `world.obs.trace` is set (and the
    /// core runs in detail mode): every instrumented call site pays one
    /// branch when disabled.
    pub(crate) rec: Option<TrackRecorder>,
    /// Cached metric handles, present only when `world.obs.metrics` is set.
    pub(crate) metrics: Option<MpsMetrics>,
    /// Per-kind device delta power `[compute, memory, network, io]` in
    /// watts, precomputed so charge spans carry their energy.
    pub(crate) delta_w: [f64; 4],
    /// Detail mode: push every segment (thread runtime, small-`p` engine).
    detail: bool,
    /// Aggregate-mode per-kind `(wall_s, work_s)` sums, `SegmentKind` order.
    agg: [(f64, f64); 5],
}

impl<'w> RankCore<'w> {
    /// A fresh core for `rank` of `size` over `world`. `detail` selects
    /// full segment/span logging; with it off, charges only accumulate
    /// per-kind sums (and no span recorder is created).
    #[must_use]
    pub fn new(rank: usize, size: usize, world: &'w World, detail: bool) -> Self {
        let node = &world.cluster.node;
        let delta_w = [
            node.cpu.delta_power(world.f_hz).raw(),
            node.memory.power.delta().raw(),
            node.nic.delta().raw(),
            node.disk.delta().raw(),
        ];
        Self {
            rank,
            size,
            world,
            clock: VirtualClock::new(),
            counters: Counters::default(),
            log: SegmentLog::new(rank),
            markers: Vec::new(),
            rec: (detail && world.obs.trace).then(|| TrackRecorder::new(rank)),
            metrics: world.obs.metrics.then(MpsMetrics::new),
            delta_w,
            detail,
            agg: [(0.0, 0.0); 5],
        }
    }

    /// This rank's id, `0..size`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the run.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The world this rank runs in.
    #[must_use]
    pub fn world(&self) -> &World {
        self.world
    }

    /// Current virtual time in seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.clock.now().raw()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Charge `instructions` of on-chip computation (`Wc`); see
    /// [`crate::Ctx::compute`].
    pub fn compute(&mut self, instructions: f64) {
        assert!(
            instructions.is_finite() && instructions >= 0.0,
            "instruction count must be non-negative, got {instructions}"
        );
        if instructions == 0.0 {
            return;
        }
        self.counters.wc += instructions;
        let dur = instructions * self.world.tc();
        self.charge(SegmentKind::Compute, dur);
    }

    /// Charge `accesses` memory accesses against a working set of
    /// `working_set_bytes`; see [`crate::Ctx::mem_access`] for the cache
    /// model split.
    pub fn mem_access(&mut self, accesses: f64, working_set_bytes: u64) {
        assert!(
            accesses.is_finite() && accesses >= 0.0,
            "access count must be non-negative, got {accesses}"
        );
        if accesses == 0.0 {
            return;
        }
        let node = &self.world.cluster.node;
        // Compact rank placement: ranks fill nodes core by core, so up to
        // `cores()` ranks contend for the node's shared cache levels.
        let co_resident = self.size.min(node.cores());
        let prof = node
            .memory
            .access_profile_concurrent(working_set_bytes, co_resident);

        if let Some(metrics) = &self.metrics {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                metrics.mem_accesses.add(accesses as u64);
                metrics.mem_dram.add((accesses * prof.dram_fraction) as u64);
            }
            metrics.cache_hit_ratio.set(1.0 - prof.dram_fraction);
        }

        // Off-chip share: memory workload at flat DRAM latency.
        let dram_accesses = accesses * prof.dram_fraction;
        if dram_accesses > 0.0 {
            self.counters.wm += dram_accesses;
            self.charge(
                SegmentKind::Memory,
                Seconds::new(dram_accesses * node.memory.dram_latency_s),
            );
        }

        // On-chip share: compute time, slowed by DVFS like the core.
        let f_scale = node.cpu.dvfs.nominal() / self.world.f_hz;
        let on_chip_s = accesses * prof.on_chip_s_per_access * f_scale;
        if on_chip_s > 0.0 {
            self.counters.wc += on_chip_s / self.world.tc().raw();
            self.charge(SegmentKind::Compute, Seconds::new(on_chip_s));
        }
    }

    /// Charge a streaming sweep of `element_touches` elements; see
    /// [`crate::Ctx::mem_stream`].
    pub fn mem_stream(&mut self, element_touches: f64, working_set_bytes: u64) {
        const LINE_ELEMS: f64 = 8.0; // 64-byte lines / 8-byte elements
        self.mem_access(element_touches / LINE_ELEMS, working_set_bytes);
    }

    /// Charge `seconds` of flat local I/O.
    pub fn io(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "I/O time must be non-negative, got {seconds}"
        );
        if seconds == 0.0 {
            return;
        }
        self.counters.io_s += seconds;
        self.charge(SegmentKind::Io, Seconds::new(seconds));
    }

    /// Record a named phase marker at the current virtual time; with
    /// tracing enabled also opens a top-level phase span.
    pub fn phase(&mut self, name: &str) {
        self.markers.push((name.to_string(), self.now()));
        if let Some(rec) = &mut self.rec {
            let t = self.clock.now().raw();
            rec.begin_phase(name, t);
        }
    }

    /// Push a device-busy segment of `work` seconds, advancing the wall
    /// clock by `α · work`.
    pub(crate) fn charge(&mut self, kind: SegmentKind, work: Seconds) {
        let wall = self.world.alpha * work;
        let start = self.now();
        if self.detail {
            self.log.push(Segment {
                kind,
                start_s: start,
                wall_s: wall.raw(),
                work_s: work.raw(),
            });
        } else {
            let slot = &mut self.agg[kind_index(kind)];
            slot.0 += wall.raw();
            slot.1 += work.raw();
        }
        self.clock.advance(wall);
        if let Some(rec) = &mut self.rec {
            let (cat, delta_w) = match kind {
                SegmentKind::Compute => (Category::Compute, self.delta_w[0]),
                SegmentKind::Memory => (Category::Memory, self.delta_w[1]),
                SegmentKind::Network => (Category::Network, self.delta_w[2]),
                SegmentKind::Io => (Category::Io, self.delta_w[3]),
                SegmentKind::Wait => (Category::Wait, 0.0),
            };
            let end = start + wall.raw();
            rec.leaf(
                cat.name(),
                cat,
                start,
                end,
                vec![
                    ("work_s", FieldValue::Seconds(work)),
                    (
                        "energy_j",
                        FieldValue::Joules(Joules::new(work.raw() * delta_w)),
                    ),
                ],
            );
        }
    }

    /// Push a wait (idle) segment of `dur` wall seconds. The clock must
    /// already have been advanced past the wait.
    pub(crate) fn log_wait(&mut self, dur: Seconds) {
        if dur <= Seconds::ZERO {
            return;
        }
        let end = self.now(); // clock already advanced by caller
        if self.detail {
            self.log.push(Segment {
                kind: SegmentKind::Wait,
                start_s: end - dur.raw(),
                wall_s: dur.raw(),
                work_s: 0.0,
            });
        } else {
            self.agg[kind_index(SegmentKind::Wait)].0 += dur.raw();
        }
        if let Some(rec) = &mut self.rec {
            rec.leaf(
                Category::Wait.name(),
                Category::Wait,
                end - dur.raw(),
                end,
                vec![],
            );
        }
        if let Some(metrics) = &mut self.metrics {
            let phase = self
                .markers
                .last()
                .map_or("none", |(name, _)| name.as_str());
            metrics.phase_wait(phase).record(dur.raw());
        }
    }

    /// Account one eager send of `bytes` payload with link time `t_net`:
    /// bumps counters/metrics, charges the NIC-busy time, and returns the
    /// message's arrival time (`start + t_net`, not overlap-squeezed).
    pub fn account_send(&mut self, bytes: u64, t_net: Seconds) -> Seconds {
        let start = self.clock.now();
        self.counters.messages += 1.0;
        #[allow(clippy::cast_precision_loss)]
        {
            self.counters.bytes += bytes as f64;
        }
        if let Some(metrics) = &self.metrics {
            metrics.messages.inc();
            metrics.bytes.add(bytes);
        }
        self.charge(SegmentKind::Network, t_net);
        start + t_net
    }

    /// Account one receive of a message arriving at `arrival_s`: advance
    /// the clock to the arrival (if it is in this rank's future) and log
    /// the idle wait. Returns the waited duration.
    pub fn account_recv(&mut self, arrival_s: f64) -> Seconds {
        let waited = self.clock.advance_to(Seconds::new(arrival_s));
        self.log_wait(waited);
        waited
    }

    /// Open a collective span named `name`; close it with
    /// [`RankCore::collective_end`]. With observability disabled the pair
    /// is one branch.
    pub fn collective_begin(&mut self, name: &'static str) -> CollScope {
        if self.rec.is_none() && self.metrics.is_none() {
            return CollScope {
                name,
                active: false,
                msgs_before: 0.0,
                bytes_before: 0.0,
                t_start: 0.0,
            };
        }
        let msgs_before = self.counters.messages;
        let bytes_before = self.counters.bytes;
        let t_start = self.clock.now().raw();
        if let Some(rec) = &mut self.rec {
            rec.enter(name, Category::Collective, t_start);
        }
        CollScope {
            name,
            active: true,
            msgs_before,
            bytes_before,
            t_start,
        }
    }

    /// Close a collective span, attributing the messages and bytes
    /// generated since [`RankCore::collective_begin`] to its metrics.
    pub fn collective_end(&mut self, scope: CollScope) {
        if !scope.active {
            return;
        }
        let msgs = self.counters.messages - scope.msgs_before;
        let bytes = self.counters.bytes - scope.bytes_before;
        if let Some(rec) = &mut self.rec {
            let t = self.clock.now().raw();
            rec.exit(
                t,
                vec![
                    ("messages", FieldValue::F64(msgs)),
                    ("bytes", FieldValue::F64(bytes)),
                ],
            );
        }
        if let Some(metrics) = &mut self.metrics {
            let t_end = self.clock.now().raw();
            let coll = metrics.collective(scope.name);
            let [calls, messages, bytes_c] = &coll.counters;
            calls.inc();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                messages.add(msgs.max(0.0) as u64);
                bytes_c.add(bytes.max(0.0) as u64);
            }
            coll.latency.record(t_end - scope.t_start);
            coll.bytes_per_call.record(bytes.max(0.0));
        }
    }

    /// Seal the core: coalesce (or, in aggregate mode, synthesize) the
    /// activity log, close the span track, and hand back everything a
    /// [`crate::RankOutcome`] needs.
    #[must_use]
    pub fn finish(mut self) -> FinishedRank {
        let finish_s = self.clock.now().raw();
        if !self.detail {
            // One stacked segment per kind; the walls sum to the rank's
            // finish time (every clock advance was a charge or a logged
            // wait), so `SegmentLog::end_s()` — which the energy meter
            // uses as the rank's span contribution — lands on `finish_s`.
            let mut start = 0.0;
            for kind in AGG_KINDS {
                let (wall, work) = self.agg[kind_index(kind)];
                if wall == 0.0 && work == 0.0 {
                    continue;
                }
                self.log.push(Segment {
                    kind,
                    start_s: start,
                    wall_s: wall,
                    work_s: work,
                });
                start += wall;
            }
        }
        self.log.coalesce();
        let track = self.rec.take().map(|r| r.finish(finish_s));
        FinishedRank {
            stats: self.counters,
            log: self.log,
            finish_s,
            markers: self.markers,
            track,
        }
    }
}
