//! Run configuration: cluster, DVFS state, overlap factor, contention.

use std::sync::Arc;

use netsim::{ContentionModel, Hockney};
use obs::ObsConfig;
use simcluster::units::Seconds;
use simcluster::ClusterSpec;

use crate::sched::SchedulerHook;

/// Everything a simulated run needs to know about its environment.
#[derive(Debug, Clone)]
pub struct World {
    /// The machine the ranks run on.
    pub cluster: ClusterSpec,
    /// DVFS frequency every core runs at, in Hz.
    pub f_hz: f64,
    /// Overlap factor `α ∈ (0, 1]` (paper §VI.F): wall time of work segments
    /// is `α ×` their device-busy time. `1.0` means no overlap.
    pub alpha: f64,
    /// Link contention model applied during communication.
    pub contention: ContentionModel,
    /// Observability switches: span tracing, metrics, trace file output.
    /// Defaults to [`ObsConfig::disabled`] — a disabled config costs one
    /// branch per instrumented event.
    pub obs: ObsConfig,
    /// Controllable-scheduler hook (`None` in production runs). When set,
    /// every point-to-point operation parks in
    /// [`SchedulerHook::permit`] before executing — the lever the
    /// `verify` crate's schedule-space explorer pulls.
    pub sched: Option<Arc<dyn SchedulerHook>>,
}

impl World {
    /// A world at frequency `f_hz` with no overlap and mild contention
    /// (knee at one node's worth of cores, slope 0.15 — enough to make the
    /// "measurement" diverge from the contention-free analytical model the
    /// way real fabrics do).
    ///
    /// # Panics
    /// Panics if `f_hz` is not one of the cluster's DVFS states.
    pub fn new(cluster: ClusterSpec, f_hz: f64) -> Self {
        cluster.validate();
        assert!(
            cluster.node.cpu.dvfs.contains(f_hz),
            "{} Hz is not a DVFS state of {}",
            f_hz,
            cluster.name
        );
        let knee = cluster.node.cores().max(1);
        Self {
            cluster,
            f_hz,
            alpha: 1.0,
            contention: ContentionModel::new(knee, 0.15),
            obs: ObsConfig::disabled(),
            sched: None,
        }
    }

    /// Set the overlap factor `α`.
    ///
    /// # Panics
    /// Panics unless `0 < alpha <= 1`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "overlap factor must be in (0, 1], got {alpha}"
        );
        self.alpha = alpha;
        self
    }

    /// Replace the contention model (use [`ContentionModel::none`] to get
    /// pure Hockney behaviour).
    pub fn with_contention(mut self, contention: ContentionModel) -> Self {
        self.contention = contention;
        self
    }

    /// Set the observability configuration, e.g.
    /// `World::new(system_g(), 2.8e9).with_obs(ObsConfig::perfetto("run.json"))`.
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Install a controllable scheduler: every point-to-point operation of
    /// every rank will park in [`SchedulerHook::permit`] before executing.
    /// Used by the `verify` crate to enumerate and replay schedules.
    pub fn with_scheduler(mut self, sched: Arc<dyn SchedulerHook>) -> Self {
        self.sched = Some(sched);
        self
    }

    /// The base (contention-free) Hockney parameters of the cluster's link.
    pub fn hockney(&self) -> Hockney {
        Hockney::new(self.cluster.link.startup_s, self.cluster.link.per_byte_s)
    }

    /// Average time per on-chip instruction at this world's frequency.
    #[must_use]
    pub fn tc(&self) -> Seconds {
        self.cluster.node.cpu.tc(self.f_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::{dori, system_g};

    #[test]
    fn world_accepts_valid_dvfs_state() {
        let w = World::new(system_g(), 2.4e9);
        assert_eq!(w.f_hz, 2.4e9);
        assert_eq!(w.alpha, 1.0);
    }

    #[test]
    #[should_panic(expected = "is not a DVFS state")]
    fn world_rejects_off_table_frequency() {
        World::new(system_g(), 3.1e9);
    }

    #[test]
    fn alpha_builder_validates() {
        let w = World::new(dori(), 2.0e9).with_alpha(0.85);
        assert_eq!(w.alpha, 0.85);
    }

    #[test]
    #[should_panic(expected = "overlap factor")]
    fn alpha_above_one_rejected() {
        World::new(dori(), 2.0e9).with_alpha(1.5);
    }

    #[test]
    fn hockney_matches_link() {
        let w = World::new(system_g(), 2.8e9);
        let h = w.hockney();
        assert_eq!(h.ts, w.cluster.link.startup_s);
        assert_eq!(h.tw, w.cluster.link.per_byte_s);
    }

    #[test]
    fn tc_respects_frequency() {
        let hi = World::new(system_g(), 2.8e9);
        let lo = World::new(system_g(), 1.6e9);
        assert!(lo.tc() > hi.tc());
    }
}
