//! Spawn and join simulated ranks; collect the run report.

use std::collections::VecDeque;

use crossbeam::channel::unbounded;
use simcluster::{ComponentEnergy, EnergyMeter, SegmentLog, VirtualClock};

use crate::ctx::Ctx;
use crate::envelope::Envelope;
use crate::stats::Counters;
use crate::world::World;

/// What one rank produced.
#[derive(Debug, Clone)]
pub struct RankOutcome<R> {
    /// The rank id.
    pub rank: usize,
    /// The program's return value.
    pub result: R,
    /// Workload counters (`Wc`, `Wm`, `M`, `B`, `T_IO`).
    pub stats: Counters,
    /// Typed activity log for energy metering and power profiling.
    pub log: SegmentLog,
    /// Virtual finish time of the rank, seconds.
    pub finish_s: f64,
    /// Phase markers `(name, virtual time)` recorded via [`Ctx::phase`].
    pub markers: Vec<(String, f64)>,
}

/// The result of a parallel run.
#[derive(Debug, Clone)]
pub struct RunReport<R> {
    /// Per-rank outcomes, indexed by rank.
    pub ranks: Vec<RankOutcome<R>>,
    /// The frequency the run used, Hz.
    pub f_hz: f64,
}

impl<R> RunReport<R> {
    /// The parallel span `Tp`: the latest rank finish time.
    pub fn span(&self) -> f64 {
        self.ranks.iter().map(|r| r.finish_s).fold(0.0, f64::max)
    }

    /// All-processor counter totals (the sums in the paper's Eqs. 15–16).
    pub fn total_counters(&self) -> Counters {
        Counters::total(self.ranks.iter().map(|r| &r.stats))
    }

    /// Borrow the per-rank activity logs.
    pub fn logs(&self) -> Vec<&SegmentLog> {
        self.ranks.iter().map(|r| &r.log).collect()
    }

    /// Measure the run's total energy on `world`'s node type — the
    /// simulator-side `Ep` the analytical model is validated against.
    pub fn energy(&self, world: &World) -> ComponentEnergy {
        let meter = EnergyMeter::new(world.cluster.node.clone(), self.f_hz);
        let logs: Vec<SegmentLog> = self.ranks.iter().map(|r| r.log.clone()).collect();
        meter.run_energy(&logs).0
    }
}

/// Run `program` on `p` simulated ranks over `world`.
///
/// Each rank executes `program(&mut ctx)` on its own thread with its own
/// virtual clock; the function returns when all ranks finish. Panics in any
/// rank propagate (the run aborts loudly rather than deadlocking).
///
/// # Panics
/// Panics if `p == 0` or `p` exceeds the cluster's total cores.
pub fn run<R, F>(world: &World, p: usize, program: F) -> RunReport<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    assert!(p > 0, "need at least one rank");
    assert!(
        p <= world.cluster.total_cores(),
        "{p} ranks exceed {}'s {} cores",
        world.cluster.name,
        world.cluster.total_cores()
    );

    // One unbounded channel per ordered rank pair: txs[s][d] sends s -> d,
    // rxs[d][s] receives s -> d.
    let mut txs: Vec<Vec<crossbeam::channel::Sender<Envelope>>> =
        (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut rxs: Vec<Vec<Option<crossbeam::channel::Receiver<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for s in 0..p {
        for d in 0..p {
            let (tx, rx) = unbounded::<Envelope>();
            txs[s].push(tx);
            rxs[d][s] = Some(rx);
        }
    }

    let hockney = world.hockney();
    let program = &program;

    let mut outcomes: Vec<Option<RankOutcome<R>>> = (0..p).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx_row) in rxs.into_iter().enumerate() {
            // Senders for this rank: the tx of channel rank -> d for each d.
            let my_senders: Vec<_> = (0..p).map(|d| txs[rank][d].clone()).collect();
            let receivers: Vec<_> = rx_row
                .into_iter()
                .map(|r| r.expect("every pair wired"))
                .collect();
            let handle = scope.spawn(move |_| {
                let mut ctx = Ctx {
                    rank,
                    size: p,
                    world,
                    clock: VirtualClock::new(),
                    counters: Counters::default(),
                    log: SegmentLog::new(rank),
                    senders: my_senders,
                    receivers,
                    pending: (0..p).map(|_| VecDeque::new()).collect(),
                    coll_seq: 0,
                    markers: Vec::new(),
                    hockney,
                };
                let result = program(&mut ctx);
                let mut log = ctx.log;
                log.coalesce();
                RankOutcome {
                    rank,
                    result,
                    stats: ctx.counters,
                    log,
                    finish_s: ctx.clock.now(),
                    markers: ctx.markers,
                }
            });
            handles.push(handle);
        }
        // Drop the original senders: each rank now holds the only clones of
        // its outgoing channels, so a panicking rank disconnects its peers
        // (turning would-be deadlocks into loud panics).
        drop(txs);
        for handle in handles {
            let outcome = handle.join().expect("rank panicked");
            let slot = outcome.rank;
            outcomes[slot] = Some(outcome);
        }
    })
    .expect("simulation scope panicked");

    RunReport {
        ranks: outcomes
            .into_iter()
            .map(|o| o.expect("every rank reported"))
            .collect(),
        f_hz: world.f_hz,
    }
}
