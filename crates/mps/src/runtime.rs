//! Spawn and join simulated ranks; collect the run report.

use std::collections::VecDeque;
use std::sync::mpsc::channel;
use std::sync::{Arc, Once};

use simcluster::{ComponentEnergy, EnergyMeter, SegmentLog};

use crate::ctx::Ctx;
use crate::envelope::Envelope;
use crate::rankcore::RankCore;
use crate::registry::Registry;
use crate::stats::Counters;
use crate::trace::{CommLog, DeadlockInfo, RunError};
use crate::world::World;

/// What one rank produced.
#[derive(Debug, Clone)]
pub struct RankOutcome<R> {
    /// The rank id.
    pub rank: usize,
    /// The program's return value.
    pub result: R,
    /// Workload counters (`Wc`, `Wm`, `M`, `B`, `T_IO`).
    pub stats: Counters,
    /// Typed activity log for energy metering and power profiling.
    pub log: SegmentLog,
    /// Communication trace (sends/receives with vector clocks) for the
    /// `analyze` crate's communication-graph checker.
    pub comm: CommLog,
    /// Virtual finish time of the rank, seconds.
    pub finish_s: f64,
    /// Phase markers `(name, virtual time)` recorded via [`Ctx::phase`].
    pub markers: Vec<(String, f64)>,
    /// The rank's span track, present when the world ran with
    /// `obs.trace` enabled.
    pub track: Option<obs::TrackTrace>,
}

/// The result of a parallel run.
#[derive(Debug, Clone)]
pub struct RunReport<R> {
    /// Per-rank outcomes, indexed by rank.
    pub ranks: Vec<RankOutcome<R>>,
    /// The frequency the run used, Hz.
    pub f_hz: f64,
}

impl<R> RunReport<R> {
    /// The parallel span `Tp`: the latest rank finish time.
    pub fn span(&self) -> f64 {
        self.ranks.iter().map(|r| r.finish_s).fold(0.0, f64::max)
    }

    /// All-processor counter totals (the sums in the paper's Eqs. 15–16).
    pub fn total_counters(&self) -> Counters {
        Counters::total(self.ranks.iter().map(|r| &r.stats))
    }

    /// Borrow the per-rank activity logs.
    pub fn logs(&self) -> Vec<&SegmentLog> {
        self.ranks.iter().map(|r| &r.log).collect()
    }

    /// Borrow the per-rank communication traces.
    pub fn comm_logs(&self) -> Vec<&CommLog> {
        self.ranks.iter().map(|r| &r.comm).collect()
    }

    /// Measure the run's total energy on `world`'s node type — the
    /// simulator-side `Ep` the analytical model is validated against.
    pub fn energy(&self, world: &World) -> ComponentEnergy {
        let meter = EnergyMeter::new(world.cluster.node.clone(), self.f_hz);
        let logs: Vec<SegmentLog> = self.ranks.iter().map(|r| r.log.clone()).collect();
        meter.run_energy(&logs).0
    }

    /// Assemble the per-rank span tracks into an [`obs::Trace`] named
    /// `name`. `None` when the run was executed without tracing.
    pub fn trace(&self, name: &str) -> Option<obs::Trace> {
        let tracks: Vec<obs::TrackTrace> =
            self.ranks.iter().filter_map(|r| r.track.clone()).collect();
        if tracks.is_empty() {
            return None;
        }
        let mut trace = obs::Trace::new(name);
        trace.set_meta("ranks", &self.ranks.len().to_string());
        trace.set_meta("f_hz", &format!("{}", self.f_hz));
        for t in tracks {
            trace.push_track(t);
        }
        Some(trace)
    }

    /// Convert the communication logs into the neutral per-rank timelines
    /// `obs::profile::critical_path` consumes. Always available — the
    /// comm trace is recorded regardless of the obs configuration.
    pub fn profile_ranks(&self) -> Vec<obs::profile::RankData> {
        use crate::trace::CommOp;
        self.ranks
            .iter()
            .map(|r| obs::profile::RankData {
                rank: r.rank,
                finish_s: r.finish_s,
                comm: r
                    .comm
                    .events
                    .iter()
                    .map(|e| obs::profile::CommRec {
                        kind: match e.op {
                            CommOp::Send { to } => obs::profile::CommKind::Send { to },
                            CommOp::Recv { from } => obs::profile::CommKind::Recv { from },
                        },
                        tag: e.tag,
                        bytes: e.bytes,
                        time_s: e.time_s,
                        waited_s: e.waited_s,
                    })
                    .collect(),
            })
            .collect()
    }
}

/// Panic payload used to unwind a rank when the run is declared dead.
/// Caught in [`try_run`]; never escapes the crate.
pub(crate) struct RankAbort {
    pub comm: CommLog,
}

/// Install (once, process-wide) a panic hook that stays silent for
/// [`RankAbort`] unwinds — they are control flow, not failures — and
/// delegates everything else to the previous hook.
fn install_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<RankAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Run `program` on `p` simulated ranks over `world`.
///
/// Each rank executes `program(&mut ctx)` on its own thread with its own
/// virtual clock; the function returns when all ranks finish. Panics in any
/// rank propagate (the run aborts loudly rather than hanging).
///
/// # Panics
/// Panics if `p == 0`, if `p` exceeds the cluster's total cores, or if the
/// run deadlocks (use [`try_run`] to get the deadlock as an error value).
pub fn run<R, F>(world: &World, p: usize, program: F) -> RunReport<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    match try_run(world, p, program) {
        Ok(report) => report,
        Err(err) => panic!("simulated run failed: {err}"),
    }
}

/// Like [`run`], but a deadlocked program returns
/// [`RunError::Deadlock`] — with the offending wait-for chain and the
/// partial communication traces — instead of panicking.
///
/// # Errors
/// Returns [`RunError::Deadlock`] when the ranks' wait-for graph reaches a
/// terminal state (a cycle of blocked receives, or a receive on a rank
/// that already finished without sending).
///
/// # Panics
/// Panics if `p == 0` or `p` exceeds the cluster's total cores, and
/// propagates panics of the rank programs themselves.
pub fn try_run<R, F>(world: &World, p: usize, program: F) -> Result<RunReport<R>, RunError>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    assert!(p > 0, "need at least one rank");
    assert!(
        p <= world.cluster.total_cores(),
        "{p} ranks exceed {}'s {} cores",
        world.cluster.name,
        world.cluster.total_cores()
    );
    install_abort_hook();

    // One unbounded channel per ordered rank pair: txs[s][d] sends s -> d,
    // rxs[d][s] receives s -> d.
    let mut txs: Vec<Vec<std::sync::mpsc::Sender<Envelope>>> =
        (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut rxs: Vec<Vec<Option<std::sync::mpsc::Receiver<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for s in 0..p {
        for rx_row in &mut rxs {
            let (tx, rx) = channel::<Envelope>();
            txs[s].push(tx);
            rx_row[s] = Some(rx);
        }
    }

    let hockney = world.hockney();
    let program = &program;
    let registry = Arc::new(Registry::new(p));

    let mut outcomes: Vec<Option<RankOutcome<R>>> = (0..p).map(|_| None).collect();
    let mut aborted: Vec<CommLog> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx_row) in rxs.into_iter().enumerate() {
            // Senders for this rank: the tx of channel rank -> d for each d.
            let my_senders: Vec<_> = (0..p).map(|d| txs[rank][d].clone()).collect();
            let receivers: Vec<_> = rx_row
                .into_iter()
                .map(|r| r.expect("every pair wired"))
                .collect();
            let registry = Arc::clone(&registry);
            let handle = scope.spawn(move || {
                let mut ctx = Ctx {
                    core: RankCore::new(rank, p, world, true),
                    senders: my_senders,
                    receivers,
                    pending: (0..p).map(|_| VecDeque::new()).collect(),
                    coll_seq: 0,
                    hockney,
                    registry: Arc::clone(&registry),
                    comm: CommLog::new(rank),
                    vclock: vec![0; p],
                    last_probe: None,
                };
                let result = program(&mut ctx);
                registry.mark_finished(rank);
                if let Some(hook) = &world.sched {
                    hook.rank_finished(rank);
                }
                ctx.drain_unconsumed();
                let fin = ctx.core.finish();
                RankOutcome {
                    rank,
                    result,
                    stats: fin.stats,
                    log: fin.log,
                    comm: ctx.comm,
                    finish_s: fin.finish_s,
                    markers: fin.markers,
                    track: fin.track,
                }
            });
            handles.push(handle);
        }
        // Drop the original senders: each rank now holds the only clones of
        // its outgoing channels, so a panicking rank disconnects its peers
        // (turning would-be hangs into loud failures).
        drop(txs);
        for handle in handles {
            match handle.join() {
                Ok(outcome) => {
                    let slot = outcome.rank;
                    outcomes[slot] = Some(outcome);
                }
                Err(payload) => match payload.downcast::<RankAbort>() {
                    Ok(abort) => aborted.push(abort.comm),
                    Err(payload) => std::panic::resume_unwind(payload),
                },
            }
        }
    });

    if let Some(verdict) = registry.take_verdict() {
        // Assemble the per-rank traces: completed ranks contribute full
        // logs, aborted ranks the partial logs carried by their unwind.
        let mut comm: Vec<CommLog> = (0..p).map(CommLog::new).collect();
        for o in outcomes.into_iter().flatten() {
            let rank = o.comm.rank;
            comm[rank] = o.comm;
        }
        for log in aborted {
            let rank = log.rank;
            comm[rank] = log;
        }
        // Forensics: every thread's recent spans/events, captured before
        // the error surfaces (the rank threads are already joined, but
        // their flight rings outlive them).
        obs::flight::record(
            "mps.deadlock",
            "event",
            0.0,
            &[
                ("cyclic", verdict.cyclic.to_string()),
                (
                    "edges",
                    verdict
                        .edges
                        .iter()
                        .map(|e| format!("{e:?}"))
                        .collect::<Vec<_>>()
                        .join(";"),
                ),
            ],
        );
        let _ = obs::flight::dump("mps-deadlock");
        return Err(RunError::Deadlock(DeadlockInfo {
            edges: verdict.edges,
            cyclic: verdict.cyclic,
            comm,
        }));
    }

    if !aborted.is_empty() {
        // Ranks unwound without a registry verdict: a scheduler hook tore
        // the run down (`SchedGrant::Abort`).
        let mut comm: Vec<CommLog> = (0..p).map(CommLog::new).collect();
        for o in outcomes.into_iter().flatten() {
            let rank = o.comm.rank;
            comm[rank] = o.comm;
        }
        for log in aborted {
            let rank = log.rank;
            comm[rank] = log;
        }
        return Err(RunError::SchedulerAbort { comm });
    }

    let report = RunReport {
        ranks: outcomes
            .into_iter()
            .map(|o| o.expect("every rank reported"))
            .collect(),
        f_hz: world.f_hz,
    };
    // Debug builds run the cheap communication-graph sanity check on every
    // completed run: a finished program must have consumed every message.
    #[cfg(debug_assertions)]
    for rank in &report.ranks {
        debug_assert!(
            rank.comm.unconsumed.is_empty(),
            "rank {} finished with unconsumed messages: {:?}",
            rank.rank,
            rank.comm.unconsumed
        );
    }
    write_trace_outputs(world, &report);
    Ok(report)
}

/// Write the configured trace files at run end. Output failures are
/// reported on stderr rather than failing the run — the simulation result
/// is still valid without its trace.
fn write_trace_outputs<R>(world: &World, report: &RunReport<R>) {
    if !world.obs.trace || (world.obs.perfetto_path.is_none() && world.obs.jsonl_path.is_none()) {
        return;
    }
    let name = format!(
        "{} p={} f={:.2}GHz",
        world.cluster.name,
        report.ranks.len(),
        world.f_hz / 1e9
    );
    let Some(trace) = report.trace(&name) else {
        return;
    };
    if let Some(path) = &world.obs.perfetto_path {
        if let Err(e) = obs::perfetto::write_file(&trace, path) {
            eprintln!(
                "mps: failed to write Perfetto trace {}: {e}",
                path.display()
            );
        }
    }
    if let Some(path) = &world.obs.jsonl_path {
        let result = std::fs::File::create(path).and_then(|f| {
            let mut sink = obs::JsonlSink::new(std::io::BufWriter::new(f));
            trace.emit(&mut sink)
        });
        if let Err(e) = result {
            eprintln!("mps: failed to write JSONL trace {}: {e}", path.display());
        }
    }
}
