//! Collective operations, implemented message-by-message with the same
//! algorithms 2010-era MPICH/MVAPICH used (and whose closed-form costs live
//! in [`netsim::collectives`]):
//!
//! * barrier — dissemination
//! * broadcast / reduce — binomial tree
//! * allreduce — recursive doubling (with pre/post folding for non-powers
//!   of two)
//! * allgather — ring
//! * all-to-all — pairwise exchange (XOR pairing for powers of two,
//!   rotation otherwise)
//!
//! Because they are built from real point-to-point messages, collective
//! *skew* (ranks arriving at different virtual times) propagates exactly as
//! on a real machine — one of the behaviours the paper's analytical model
//! approximates away.

use crate::ctx::Ctx;
use crate::envelope::internal_tag;

/// Element-wise reduction operators for the typed collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    fn combine(self, acc: &mut [f64], other: &[f64]) {
        debug_assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::Sum => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a += *b;
                }
            }
            ReduceOp::Max => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.max(*b);
                }
            }
            ReduceOp::Min => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.min(*b);
                }
            }
        }
    }
}

impl<'w> Ctx<'w> {
    /// Dissemination barrier: `ceil(log2 p)` rounds of zero-payload
    /// exchanges. After it returns, every rank's clock is at least the
    /// latest pre-barrier clock (synchronization waits are logged).
    pub fn barrier(&mut self) {
        self.collective_scope("mps:barrier", Self::barrier_inner);
    }

    fn barrier_inner(&mut self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let seq = self.next_coll_seq();
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let to = (self.rank() + dist) % p;
            let from = (self.rank() + p - dist) % p;
            let tag = internal_tag(seq, round);
            self.send_raw::<u8>(to, tag, Vec::new(), p);
            let _ = self.recv_raw::<u8>(from, tag);
            dist <<= 1;
            round += 1;
        }
    }

    /// Binomial-tree broadcast of `data` from `root`. Every rank returns the
    /// broadcast vector (the root returns its own input).
    pub fn bcast<T: Send + Clone + 'static>(&mut self, root: usize, data: Vec<T>) -> Vec<T> {
        self.collective_scope("mps:bcast", |c| c.bcast_inner(root, data))
    }

    fn bcast_inner<T: Send + Clone + 'static>(&mut self, root: usize, data: Vec<T>) -> Vec<T> {
        let p = self.size();
        assert!(root < p, "broadcast root {root} out of range");
        let seq = self.next_coll_seq();
        if p == 1 {
            return data;
        }
        let vrank = (self.rank() + p - root) % p;
        let tag = internal_tag(seq, 0);

        // Receive phase: wait for the message from the parent.
        let mut buf = data;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let src = (self.rank() + p - mask) % p;
                buf = self.recv_raw::<T>(src, tag);
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children below the received mask.
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < p {
                let dst = (self.rank() + mask) % p;
                self.send_raw(dst, tag, buf.clone(), p);
            }
            mask >>= 1;
        }
        buf
    }

    /// Binomial-tree reduction of `data` to `root`. The root receives the
    /// combined vector; other ranks receive `None`. Each combine charges one
    /// instruction per element of on-chip work.
    pub fn reduce(&mut self, root: usize, data: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        self.collective_scope("mps:reduce", |c| c.reduce_inner(root, data, op))
    }

    fn reduce_inner(&mut self, root: usize, data: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        let p = self.size();
        assert!(root < p, "reduce root {root} out of range");
        let seq = self.next_coll_seq();
        let mut acc = data.to_vec();
        if p == 1 {
            return Some(acc);
        }
        let vrank = (self.rank() + p - root) % p;
        let tag = internal_tag(seq, 0);
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask == 0 {
                let child_v = vrank | mask;
                if child_v < p {
                    let src = (child_v + root) % p;
                    let other = self.recv_raw::<f64>(src, tag);
                    op.combine(&mut acc, &other);
                    self.compute(acc.len() as f64);
                }
            } else {
                let parent_v = vrank & !mask;
                let dst = (parent_v + root) % p;
                self.send_raw(dst, tag, acc.clone(), p);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Allreduce with an arbitrary operator: recursive doubling among the
    /// largest power-of-two subset, with pre-fold of the `r = p − 2^m` extra
    /// ranks and a post-broadcast back to them (the MPICH scheme).
    pub fn allreduce(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        self.collective_scope("mps:allreduce", |c| c.allreduce_inner(data, op))
    }

    fn allreduce_inner(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        let p = self.size();
        let seq = self.next_coll_seq();
        let mut acc = data.to_vec();
        if p == 1 {
            return acc;
        }
        let m = prev_power_of_two(p);
        let r = p - m;

        // Pre-fold: ranks >= m hand their data to rank - m.
        if self.rank() >= m {
            let tag = internal_tag(seq, 0);
            self.send_raw(self.rank() - m, tag, acc, p);
            // Wait for the final result.
            let tag = internal_tag(seq, 63);
            return self.recv_raw::<f64>(self.rank() - m, tag);
        }
        if self.rank() < r {
            let tag = internal_tag(seq, 0);
            let other = self.recv_raw::<f64>(self.rank() + m, tag);
            op.combine(&mut acc, &other);
            self.compute(acc.len() as f64);
        }

        // Recursive doubling among ranks < m.
        let mut round = 1u32;
        let mut mask = 1usize;
        while mask < m {
            let partner = self.rank() ^ mask;
            let tag = internal_tag(seq, round);
            let other = self.exchange_raw(partner, tag, acc.clone(), p);
            op.combine(&mut acc, &other);
            self.compute(acc.len() as f64);
            mask <<= 1;
            round += 1;
        }

        // Post: send results back to the folded ranks.
        if self.rank() < r {
            let tag = internal_tag(seq, 63);
            self.send_raw(self.rank() + m, tag, acc.clone(), p);
        }
        acc
    }

    /// Element-wise sum allreduce (the common case in CG/EP/FT).
    pub fn allreduce_sum(&mut self, data: &[f64]) -> Vec<f64> {
        self.allreduce(data, ReduceOp::Sum)
    }

    /// Element-wise max allreduce.
    pub fn allreduce_max(&mut self, data: &[f64]) -> Vec<f64> {
        self.allreduce(data, ReduceOp::Max)
    }

    /// Scalar sum allreduce convenience.
    pub fn allreduce_scalar(&mut self, x: f64) -> f64 {
        self.allreduce_sum(&[x])[0]
    }

    /// Ring allgather: every rank contributes `mine`; returns all
    /// contributions indexed by rank.
    pub fn allgather<T: Send + Clone + 'static>(&mut self, mine: Vec<T>) -> Vec<Vec<T>> {
        self.collective_scope("mps:allgather", |c| c.allgather_inner(mine))
    }

    fn allgather_inner<T: Send + Clone + 'static>(&mut self, mine: Vec<T>) -> Vec<Vec<T>> {
        let p = self.size();
        let seq = self.next_coll_seq();
        let mut out: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        out[self.rank()] = Some(mine);
        if p > 1 {
            let right = (self.rank() + 1) % p;
            let left = (self.rank() + p - 1) % p;
            for i in 0..p - 1 {
                // Chunk that originated at rank - i (mod p) moves right.
                let src_owner = (self.rank() + p - i) % p;
                let chunk = out[src_owner].clone().expect("chunk present");
                let tag = internal_tag(seq, i as u32);
                self.send_raw(right, tag, chunk, p);
                let incoming_owner = (left + p - i) % p;
                let recvd = self.recv_raw::<T>(left, tag);
                out[incoming_owner] = Some(recvd);
            }
        }
        out.into_iter()
            .map(|c| c.expect("all chunks gathered"))
            .collect()
    }

    /// Pairwise-exchange all-to-all: `chunks[d]` goes to rank `d`; returns
    /// `received[s]` = chunk sent by rank `s`. Chunks may have different
    /// lengths (this doubles as `alltoallv`).
    ///
    /// Powers of two use XOR pairing (the "binary exchange" the paper's FT
    /// analysis assumes); other sizes use rotation pairing. Either way each
    /// rank sends `p − 1` messages — the `(p−1)(ts + tw·m)` cost of §V.B.1.
    pub fn alltoall<T: Send + Clone + 'static>(&mut self, chunks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.collective_scope("mps:alltoall", |c| c.alltoall_inner(chunks))
    }

    fn alltoall_inner<T: Send + Clone + 'static>(
        &mut self,
        mut chunks: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let p = self.size();
        assert_eq!(chunks.len(), p, "alltoall needs one chunk per rank");
        let seq = self.next_coll_seq();
        let mut out: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        // Own chunk stays local, free of charge.
        out[self.rank()] = Some(std::mem::take(&mut chunks[self.rank()]));
        if p > 1 {
            if p.is_power_of_two() {
                for i in 1..p {
                    let partner = self.rank() ^ i;
                    let tag = internal_tag(seq, i as u32);
                    let data = std::mem::take(&mut chunks[partner]);
                    let recvd = self.exchange_raw(partner, tag, data, p);
                    out[partner] = Some(recvd);
                }
            } else {
                for i in 1..p {
                    let dst = (self.rank() + i) % p;
                    let src = (self.rank() + p - i) % p;
                    let tag = internal_tag(seq, i as u32);
                    let data = std::mem::take(&mut chunks[dst]);
                    self.send_raw(dst, tag, data, p);
                    out[src] = Some(self.recv_raw::<T>(src, tag));
                }
            }
        }
        out.into_iter()
            .map(|c| c.expect("all chunks exchanged"))
            .collect()
    }

    /// Gather `mine` to `root` (via the ring allgather for simplicity of
    /// counting; NPB uses gather only for reporting).
    pub fn gather<T: Send + Clone + 'static>(
        &mut self,
        root: usize,
        mine: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        let all = self.allgather(mine);
        (self.rank() == root).then_some(all)
    }
}

fn prev_power_of_two(p: usize) -> usize {
    assert!(p > 0);
    1usize << (usize::BITS - 1 - p.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prev_power_of_two_cases() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(8), 8);
        assert_eq!(prev_power_of_two(12), 8);
    }

    #[test]
    fn reduce_op_combines() {
        let mut a = vec![1.0, 5.0];
        ReduceOp::Sum.combine(&mut a, &[2.0, 3.0]);
        assert_eq!(a, vec![3.0, 8.0]);
        ReduceOp::Max.combine(&mut a, &[10.0, 0.0]);
        assert_eq!(a, vec![10.0, 8.0]);
        ReduceOp::Min.combine(&mut a, &[4.0, 2.0]);
        assert_eq!(a, vec![4.0, 2.0]);
    }
}
