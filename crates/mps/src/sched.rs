//! Controllable scheduling: the hook the `verify` crate's schedule-space
//! explorer drives.
//!
//! The production runtime lets the host OS interleave rank threads freely —
//! sound for *timing* (virtual clocks are deterministic) but it executes
//! only one interleaving of the message-matching decisions per run. A
//! [`SchedulerHook`] installed via `World::with_scheduler` turns every
//! point-to-point operation into a *decision point*: the rank parks inside
//! [`SchedulerHook::permit`] until the controller grants it the right to
//! execute exactly one operation. A controller that serializes grants (at
//! most one rank between parks) obtains full control over the interleaving
//! of sends, receives and — through them — collectives, and can therefore
//! enumerate the schedule space of a small world exhaustively.
//!
//! The contract, relied on by `verify::explore`:
//!
//! * `permit(rank, op)` is called **before** any effect of `op` (no channel
//!   push, no clock advance, no trace event). It blocks until the grant.
//! * A grant of [`SchedGrant::Abort`] makes the rank unwind immediately with
//!   its partial communication trace; `try_run` surfaces the teardown as
//!   [`crate::RunError::SchedulerAbort`].
//! * For [`SchedOp::RecvAny`], the grant's `source` picks which sender the
//!   wildcard receive matches. The controller must only grant a receive
//!   whose message has already been sent (and whose sender has parked
//!   again), so the receive completes without blocking.
//! * [`SchedulerHook::rank_finished`] fires after the rank's program
//!   returns, before its inbox drain.

/// A point-to-point operation a rank is about to perform. Collectives are
/// built from these, so a controller sees every message of a collective as
/// its own decision point (with an internal `tag ≥ 2^32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchedOp {
    /// A send of `tag` to rank `to` (never blocks; always enabled).
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u64,
    },
    /// A blocking receive of `tag` from rank `from` (enabled once a
    /// matching message sits in the `from → self` channel).
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// A wildcard receive of `tag` from any rank — the operation whose
    /// match order is genuinely schedule-dependent.
    RecvAny {
        /// Message tag.
        tag: u64,
    },
}

impl std::fmt::Display for SchedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedOp::Send { to, tag } => write!(f, "send(to {to}, tag {tag})"),
            SchedOp::Recv { from, tag } => write!(f, "recv(from {from}, tag {tag})"),
            SchedOp::RecvAny { tag } => write!(f, "recv_any(tag {tag})"),
        }
    }
}

/// The controller's reply to a [`SchedulerHook::permit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedGrant {
    /// Execute the operation. For [`SchedOp::RecvAny`], `source` names the
    /// sender whose message the receive must match; `None` for every other
    /// operation.
    Proceed {
        /// Matched source for a wildcard receive.
        source: Option<usize>,
    },
    /// Tear the run down: the rank unwinds with its partial trace.
    Abort,
}

/// A controllable scheduler. Implementations live outside `mps` (the
/// `verify` crate's explorer and witness replayer); the runtime only calls
/// the two hooks.
pub trait SchedulerHook: Send + Sync + std::fmt::Debug {
    /// Block until `rank` may execute `op` (or the run is torn down).
    fn permit(&self, rank: usize, op: SchedOp) -> SchedGrant;

    /// `rank`'s program returned.
    fn rank_finished(&self, rank: usize);
}
