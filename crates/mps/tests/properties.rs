//! Property-based tests for the message-passing runtime: collective
//! correctness for arbitrary rank counts and payloads, timing invariants,
//! and counter accounting.

use mps::{run, ReduceOp, World};
use proptest::prelude::*;
use simcluster::{system_g, SegmentKind};

fn world() -> World {
    World::new(system_g(), 2.8e9)
}

proptest! {
    // Each case spawns threads; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_sum_equals_sequential_reduction(
        p in 1usize..10,
        data in proptest::collection::vec(-1e6f64..1e6, 1..8),
    ) {
        let w = world();
        let data_ref = &data;
        let r = run(&w, p, move |ctx| {
            // Rank-dependent input: element i scaled by (rank+1).
            let mine: Vec<f64> =
                data_ref.iter().map(|x| x * (ctx.rank() + 1) as f64).collect();
            ctx.allreduce_sum(&mine)
        });
        let scale: f64 = (1..=p).map(|r| r as f64).sum();
        for rk in &r.ranks {
            for (got, x) in rk.result.iter().zip(&data) {
                let want = x * scale;
                prop_assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "p={p} got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn allreduce_max_and_min_agree_with_iterator(
        p in 2usize..9,
        seed in 0u64..1000,
    ) {
        let w = world();
        let r = run(&w, p, move |ctx| {
            let x = [((ctx.rank() as u64 * 2654435761 + seed) % 1000) as f64];
            (
                ctx.allreduce(&x, ReduceOp::Max)[0],
                ctx.allreduce(&x, ReduceOp::Min)[0],
            )
        });
        let vals: Vec<f64> = (0..p)
            .map(|rk| ((rk as u64 * 2654435761 + seed) % 1000) as f64)
            .collect();
        let want_max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let want_min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        for rk in &r.ranks {
            prop_assert_eq!(rk.result, (want_max, want_min));
        }
    }

    #[test]
    fn alltoall_is_an_exact_transpose(p in 1usize..9, tag in 0u32..100) {
        let w = world();
        let r = run(&w, p, move |ctx| {
            let chunks: Vec<Vec<u64>> = (0..ctx.size())
                .map(|d| vec![(ctx.rank() as u64) << 32 | d as u64 | u64::from(tag) << 16])
                .collect();
            ctx.alltoall(chunks)
        });
        for rk in &r.ranks {
            for (s, chunk) in rk.result.iter().enumerate() {
                let want = (s as u64) << 32 | rk.rank as u64 | u64::from(tag) << 16;
                prop_assert_eq!(chunk[0], want);
            }
        }
    }

    #[test]
    fn allgather_preserves_every_contribution(
        p in 1usize..9,
        len in 1usize..16,
    ) {
        let w = world();
        let r = run(&w, p, move |ctx| {
            ctx.allgather(vec![ctx.rank() as u32; len])
        });
        for rk in &r.ranks {
            prop_assert_eq!(rk.result.len(), p);
            for (s, chunk) in rk.result.iter().enumerate() {
                prop_assert_eq!(chunk.len(), len);
                prop_assert!(chunk.iter().all(|&v| v == s as u32));
            }
        }
    }

    #[test]
    fn bcast_from_every_root(p in 1usize..8, root_pick in 0usize..8, val in any::<u32>()) {
        let root = root_pick % p;
        let w = world();
        let r = run(&w, p, move |ctx| {
            let data = if ctx.rank() == root { vec![val; 3] } else { vec![] };
            ctx.bcast(root, data)
        });
        for rk in &r.ranks {
            prop_assert_eq!(&rk.result, &vec![val; 3]);
        }
    }

    #[test]
    fn clocks_never_go_backward_and_finish_covers_work(
        p in 1usize..6,
        instr in 1e3f64..1e7,
    ) {
        let w = world();
        let r = run(&w, p, move |ctx| {
            ctx.compute(instr);
            ctx.barrier();
            ctx.now()
        });
        let tc = w.tc().raw();
        for rk in &r.ranks {
            prop_assert!(rk.finish_s >= instr * tc * 0.999);
            prop_assert!(rk.result <= rk.finish_s + 1e-15);
            // Log end equals the rank's clock.
            prop_assert!((rk.log.end_s() - rk.finish_s).abs() < 1e-12);
        }
    }

    #[test]
    fn counters_match_segment_times(p in 1usize..5, instr in 1e4f64..1e6) {
        let w = world();
        let r = run(&w, p, move |ctx| {
            ctx.compute(instr);
            ctx.mem_access(1e4, 1 << 28);
        });
        let tc = w.tc().raw();
        for rk in &r.ranks {
            // Compute work time = (charged wc) · tc exactly (no comm here).
            let wc_time = rk.log.work_time(SegmentKind::Compute);
            prop_assert!((wc_time - rk.stats.wc * tc).abs() <= 1e-9 * wc_time.max(1e-12));
            // Memory work time = wm · dram latency.
            let wm_time = rk.log.work_time(SegmentKind::Memory);
            let dram = w.cluster.node.memory.dram_latency_s;
            prop_assert!((wm_time - rk.stats.wm * dram).abs() <= 1e-9 * wm_time.max(1e-12));
        }
    }

    #[test]
    fn message_bytes_count_payload_exactly(p in 2usize..6, words in 1usize..512) {
        let w = world();
        let r = run(&w, p, move |ctx| {
            if ctx.rank() == 0 {
                for d in 1..ctx.size() {
                    ctx.send(d, 0, vec![0u64; words]);
                }
            } else {
                let _ = ctx.recv::<u64>(0, 0);
            }
        });
        let c = r.total_counters();
        prop_assert_eq!(c.messages, (p - 1) as f64);
        prop_assert_eq!(c.bytes, ((p - 1) * words * 8) as f64);
    }

    #[test]
    fn alpha_scales_span_linearly_for_pure_compute(
        alpha in 0.5f64..1.0,
        instr in 1e5f64..1e7,
    ) {
        let base = world();
        let squeezed = world().with_alpha(alpha);
        let t_base = run(&base, 1, move |ctx| ctx.compute(instr)).span();
        let t_sq = run(&squeezed, 1, move |ctx| ctx.compute(instr)).span();
        prop_assert!((t_sq / t_base - alpha).abs() < 1e-9);
    }
}
