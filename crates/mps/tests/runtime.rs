//! Integration tests for the mps runtime: correctness of data movement,
//! collectives, virtual-time accounting, and determinism.

use mps::{run, ReduceOp, World};
use simcluster::{system_g, SegmentKind};

fn world() -> World {
    World::new(system_g(), 2.8e9)
}

#[test]
fn single_rank_runs_and_reports() {
    let w = world();
    let r = run(&w, 1, |ctx| {
        ctx.compute(1e6);
        42u32
    });
    assert_eq!(r.ranks.len(), 1);
    assert_eq!(r.ranks[0].result, 42);
    assert!(r.span() > 0.0);
    assert_eq!(r.ranks[0].stats.wc, 1e6);
}

#[test]
fn compute_time_is_instructions_times_tc() {
    let w = world();
    let tc = w.tc().raw();
    let r = run(&w, 1, |ctx| ctx.compute(1e7));
    assert!((r.span() - 1e7 * tc).abs() / (1e7 * tc) < 1e-9);
}

#[test]
fn alpha_squeezes_wall_time_but_not_work() {
    let w = world().with_alpha(0.8);
    let tc = w.tc().raw();
    let r = run(&w, 1, |ctx| ctx.compute(1e7));
    let expect_wall = 0.8 * 1e7 * tc;
    assert!((r.span() - expect_wall).abs() / expect_wall < 1e-9);
    let work = r.ranks[0].log.work_time(SegmentKind::Compute);
    assert!((work - 1e7 * tc).abs() / (1e7 * tc) < 1e-9);
}

#[test]
fn p2p_send_recv_moves_data_and_time() {
    let w = world();
    let r = run(&w, 2, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 7, vec![1.0f64, 2.0, 3.0]);
            Vec::new()
        } else {
            ctx.recv::<f64>(0, 7)
        }
    });
    assert_eq!(r.ranks[1].result, vec![1.0, 2.0, 3.0]);
    // Receiver waited for the transfer: its finish >= the Hockney time.
    let h = w.hockney();
    assert!(r.ranks[1].finish_s >= h.p2p(24) * 0.999);
    // Sender counted the message and bytes; receiver counted none.
    assert_eq!(r.ranks[0].stats.messages, 1.0);
    assert_eq!(r.ranks[0].stats.bytes, 24.0);
    assert_eq!(r.ranks[1].stats.messages, 0.0);
}

#[test]
fn out_of_order_tags_are_buffered() {
    let w = world();
    let r = run(&w, 2, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 1, vec![10i64]);
            ctx.send(1, 2, vec![20i64]);
            (0, 0)
        } else {
            // Receive in reverse tag order.
            let b = ctx.recv::<i64>(0, 2)[0];
            let a = ctx.recv::<i64>(0, 1)[0];
            (a, b)
        }
    });
    assert_eq!(r.ranks[1].result, (10, 20));
}

#[test]
#[should_panic]
fn type_mismatch_on_recv_panics() {
    let w = world();
    run(&w, 2, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 0, vec![1u8, 2, 3]);
        } else {
            let _ = ctx.recv::<f64>(0, 0);
        }
    });
}

#[test]
fn barrier_synchronizes_clocks() {
    let w = world();
    let r = run(&w, 4, |ctx| {
        // Rank 3 works much longer before the barrier.
        if ctx.rank() == 3 {
            ctx.compute(1e8);
        } else {
            ctx.compute(1e3);
        }
        ctx.barrier();
        ctx.now()
    });
    let slowest_pre = 1e8 * w.tc().raw();
    for rk in &r.ranks {
        assert!(
            rk.result >= slowest_pre,
            "rank {} left the barrier at {} < {}",
            rk.rank,
            rk.result,
            slowest_pre
        );
    }
    // Fast ranks logged waits.
    assert!(r.ranks[0].log.wall_time(SegmentKind::Wait) > 0.0);
}

#[test]
fn allreduce_sum_matches_sequential_for_various_p() {
    for p in [1usize, 2, 3, 4, 5, 7, 8, 16] {
        let w = world();
        let r = run(&w, p, |ctx| {
            let x = vec![ctx.rank() as f64, 1.0, (ctx.rank() * ctx.rank()) as f64];
            ctx.allreduce_sum(&x)
        });
        let n = p as f64;
        let expect = vec![
            n * (n - 1.0) / 2.0,
            n,
            (0..p).map(|i| (i * i) as f64).sum::<f64>(),
        ];
        for rk in &r.ranks {
            for (got, want) in rk.result.iter().zip(&expect) {
                assert!(
                    (got - want).abs() < 1e-9,
                    "p={p} rank={} got {:?} want {:?}",
                    rk.rank,
                    rk.result,
                    expect
                );
            }
        }
    }
}

#[test]
fn allreduce_max_and_min() {
    let w = world();
    let r = run(&w, 6, |ctx| {
        let x = [ctx.rank() as f64];
        (
            ctx.allreduce(&x, ReduceOp::Max)[0],
            ctx.allreduce(&x, ReduceOp::Min)[0],
        )
    });
    for rk in &r.ranks {
        assert_eq!(rk.result, (5.0, 0.0));
    }
}

#[test]
fn reduce_delivers_to_root_only() {
    let w = world();
    let r = run(&w, 8, |ctx| ctx.reduce(3, &[1.0], ReduceOp::Sum));
    for rk in &r.ranks {
        if rk.rank == 3 {
            assert_eq!(rk.result.as_ref().unwrap()[0], 8.0);
        } else {
            assert!(rk.result.is_none());
        }
    }
}

#[test]
fn bcast_distributes_from_any_root() {
    for root in [0usize, 2, 4] {
        let w = world();
        let r = run(&w, 5, |ctx| {
            let data = if ctx.rank() == root {
                vec![3.25f64; 16]
            } else {
                Vec::new()
            };
            ctx.bcast(root, data)
        });
        for rk in &r.ranks {
            assert_eq!(rk.result, vec![3.25f64; 16], "root={root} rank={}", rk.rank);
        }
    }
}

#[test]
fn allgather_collects_in_rank_order() {
    let w = world();
    let r = run(&w, 5, |ctx| ctx.allgather(vec![ctx.rank() as u32 * 10]));
    for rk in &r.ranks {
        let flat: Vec<u32> = rk.result.iter().map(|v| v[0]).collect();
        assert_eq!(flat, vec![0, 10, 20, 30, 40]);
    }
}

#[test]
fn alltoall_is_a_transpose() {
    for p in [2usize, 4, 6, 8] {
        let w = world();
        let r = run(&w, p, |ctx| {
            // chunks[d] = [rank, d]
            let chunks: Vec<Vec<usize>> = (0..ctx.size()).map(|d| vec![ctx.rank(), d]).collect();
            ctx.alltoall(chunks)
        });
        for rk in &r.ranks {
            for (s, chunk) in rk.result.iter().enumerate() {
                assert_eq!(chunk, &vec![s, rk.rank], "p={p}");
            }
        }
    }
}

#[test]
fn alltoall_with_jagged_chunks() {
    let w = world();
    let r = run(&w, 3, |ctx| {
        let chunks: Vec<Vec<u8>> = (0..3).map(|d| vec![ctx.rank() as u8; d + 1]).collect();
        ctx.alltoall(chunks)
    });
    for rk in &r.ranks {
        for (s, chunk) in rk.result.iter().enumerate() {
            assert_eq!(chunk.len(), rk.rank + 1);
            assert!(chunk.iter().all(|&b| b == s as u8));
        }
    }
}

#[test]
fn alltoall_message_counts_match_pairwise_exchange() {
    let p = 8;
    let w = world();
    let r = run(&w, p, |ctx| {
        let chunks: Vec<Vec<f64>> = (0..ctx.size()).map(|_| vec![0.0f64; 128]).collect();
        ctx.alltoall(chunks);
    });
    for rk in &r.ranks {
        assert_eq!(rk.stats.messages, (p - 1) as f64);
        assert_eq!(rk.stats.bytes, (p - 1) as f64 * 128.0 * 8.0);
    }
}

#[test]
fn determinism_same_virtual_times_across_runs() {
    let w = world();
    let go = || {
        run(&w, 8, |ctx| {
            ctx.compute(1e5 * (ctx.rank() as f64 + 1.0));
            let s = ctx.allreduce_scalar(ctx.rank() as f64);
            ctx.barrier();
            ctx.compute(1e4);
            s
        })
    };
    let a = go();
    let b = go();
    assert_eq!(a.span(), b.span());
    for (x, y) in a.ranks.iter().zip(&b.ranks) {
        assert_eq!(x.finish_s, y.finish_s);
        assert_eq!(x.stats, y.stats);
    }
}

#[test]
fn energy_increases_with_more_work() {
    let w = world();
    let small = run(&w, 2, |ctx| ctx.compute(1e6)).energy(&w);
    let large = run(&w, 2, |ctx| ctx.compute(1e8)).energy(&w);
    assert!(large.total() > small.total());
}

#[test]
fn parallel_run_has_energy_overhead_vs_sequential() {
    // The heart of the paper: E0 = Ep - E1 > 0 when parallelization adds
    // communication.
    let w = world();
    let n_instr = 4e7;
    let seq = run(&w, 1, |ctx| ctx.compute(n_instr));
    let e1 = seq.energy(&w).total();
    let p = 4;
    let par = run(&w, p, |ctx| {
        ctx.compute(n_instr / p as f64);
        let chunks: Vec<Vec<f64>> = (0..ctx.size()).map(|_| vec![0.0; 4096]).collect();
        ctx.alltoall(chunks);
    });
    let ep = par.energy(&w).total();
    assert!(
        ep > e1,
        "parallel energy {ep} J should exceed sequential {e1} J"
    );
}

#[test]
fn phase_markers_are_recorded_in_order() {
    let w = world();
    let r = run(&w, 1, |ctx| {
        ctx.phase("init");
        ctx.compute(1e6);
        ctx.phase("main");
        ctx.compute(1e6);
        ctx.phase("done");
    });
    let m = &r.ranks[0].markers;
    assert_eq!(m.len(), 3);
    assert_eq!(m[0].0, "init");
    assert!(m[0].1 <= m[1].1 && m[1].1 <= m[2].1);
    assert!(m[2].1 > 0.0);
}

#[test]
fn mem_access_latency_depends_on_working_set() {
    let w = world();
    let small = run(&w, 1, |ctx| ctx.mem_access(1e6, 16 * 1024));
    let big = run(&w, 1, |ctx| ctx.mem_access(1e6, 256 << 20));
    assert!(
        big.span() > small.span() * 5.0,
        "DRAM-resident working set must be much slower: {} vs {}",
        big.span(),
        small.span()
    );
}

#[test]
fn contention_inflates_collective_time() {
    use netsim::ContentionModel;
    let base = world().with_contention(ContentionModel::none());
    let congested = world().with_contention(ContentionModel::new(2, 1.0));
    let prog = |ctx: &mut mps::Ctx| {
        let chunks: Vec<Vec<f64>> = (0..ctx.size()).map(|_| vec![0.0; 1 << 14]).collect();
        ctx.alltoall(chunks);
    };
    let t_free = run(&base, 8, prog).span();
    let t_cong = run(&congested, 8, prog).span();
    assert!(t_cong > t_free, "{t_cong} vs {t_free}");
}
