//! The assembled trace of one run: per-rank span tracks, counter tracks
//! (e.g. PowerPack power samples), and run metadata.

use crate::sink::{Record, Sink};
use crate::span::{EventRecord, SpanRecord};

/// All spans and instant events of one track (one rank).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackTrace {
    /// Track (rank) id.
    pub track: usize,
    /// Closed spans, sorted by start time (parents before children).
    pub spans: Vec<SpanRecord>,
    /// Instant events in record order.
    pub instants: Vec<EventRecord>,
}

impl TrackTrace {
    /// Latest span end on the track (0 when empty).
    #[must_use]
    pub fn end_s(&self) -> f64 {
        self.spans.iter().map(|s| s.end_s).fold(0.0, f64::max)
    }
}

/// A sampled numeric series rendered as a Perfetto counter track.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    /// Counter name (e.g. `power cpu`).
    pub name: String,
    /// Unit suffix for display (e.g. `W`).
    pub unit: String,
    /// `(virtual time s, value)` samples in time order.
    pub samples: Vec<(f64, f64)>,
}

/// The complete observability record of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Run name (shown as the Perfetto process name).
    pub name: String,
    /// One span track per rank, indexed by rank.
    pub tracks: Vec<TrackTrace>,
    /// Counter tracks (power samples, metric series).
    pub counters: Vec<CounterTrack>,
    /// Free-form run metadata `(key, value)` pairs.
    pub meta: Vec<(String, String)>,
}

impl Trace {
    /// An empty trace named `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Append a finished track.
    pub fn push_track(&mut self, track: TrackTrace) {
        self.tracks.push(track);
    }

    /// Add a counter track from `(t_s, value)` samples.
    pub fn add_counter_track(&mut self, name: &str, unit: &str, samples: Vec<(f64, f64)>) {
        self.counters.push(CounterTrack {
            name: name.to_string(),
            unit: unit.to_string(),
            samples,
        });
    }

    /// Attach a metadata pair.
    pub fn set_meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Total number of spans across tracks.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.tracks.iter().map(|t| t.spans.len()).sum()
    }

    /// Latest virtual time in the trace (span ends and counter samples).
    #[must_use]
    pub fn end_s(&self) -> f64 {
        let spans = self
            .tracks
            .iter()
            .map(TrackTrace::end_s)
            .fold(0.0, f64::max);
        let counters = self
            .counters
            .iter()
            .flat_map(|c| c.samples.iter().map(|(t, _)| *t))
            .fold(0.0, f64::max);
        spans.max(counters)
    }

    /// Stream every record of the trace into `sink` (spans and instants
    /// per track in order, then counter samples), and flush it.
    ///
    /// # Errors
    /// Propagates the sink's flush error (I/O sinks).
    pub fn emit(&self, sink: &mut dyn Sink) -> std::io::Result<()> {
        for track in &self.tracks {
            for span in &track.spans {
                sink.record(Record::Span(span));
            }
            for ev in &track.instants {
                sink.record(Record::Instant(ev));
            }
        }
        for counter in &self.counters {
            for &(t_s, value) in &counter.samples {
                sink.record(Record::Counter {
                    name: &counter.name,
                    unit: &counter.unit,
                    t_s,
                    value,
                });
            }
        }
        sink.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, TrackRecorder};

    fn tiny_trace() -> Trace {
        let mut rec = TrackRecorder::new(0);
        rec.begin_phase("p", 0.0);
        rec.leaf("compute", Category::Compute, 0.0, 0.5, vec![]);
        let mut trace = Trace::new("test");
        trace.push_track(rec.finish(1.0));
        trace.add_counter_track("power cpu", "W", vec![(0.0, 10.0), (0.5, 20.0)]);
        trace.set_meta("p", "1");
        trace
    }

    #[test]
    fn counts_and_end() {
        let t = tiny_trace();
        assert_eq!(t.span_count(), 2);
        assert_eq!(t.end_s(), 1.0);
        assert_eq!(t.tracks[0].end_s(), 1.0);
    }

    #[test]
    fn emit_reaches_every_record() {
        let t = tiny_trace();
        let mut ring = crate::sink::RingSink::new(16);
        t.emit(&mut ring).expect("in-memory sink");
        // 2 spans + 2 counter samples.
        assert_eq!(ring.len(), 4);
    }
}
