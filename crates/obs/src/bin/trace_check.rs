//! Validate a Chrome/Perfetto trace-event JSON file.
//!
//! Usage: `trace_check <trace.json> [--expect-ranks N] [--expect-counters N]`
//!
//! Exits 0 when the document is structurally valid (and matches the
//! optional expectations), 1 otherwise — the CI gate for emitted traces.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut expect_ranks: Option<usize> = None;
    let mut expect_counters: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect-ranks" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => expect_ranks = Some(n),
                None => return usage("--expect-ranks needs an integer"),
            },
            "--expect-counters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => expect_counters = Some(n),
                None => return usage("--expect-counters needs an integer"),
            },
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
            }
            other => return usage(&format!("unrecognised argument {other:?}")),
        }
    }
    let Some(path) = path else {
        return usage("missing trace file path");
    };

    let document = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match obs::perfetto::validate(&document) {
        Ok(report) => {
            println!(
                "trace_check: {path}: OK — {} span events on {} tracks, \
                 {} counter samples across {} counters",
                report.span_events,
                report.span_tracks.len(),
                report.counter_events,
                report.counter_names.len()
            );
            let mut ok = true;
            if let Some(n) = expect_ranks {
                if report.span_tracks.len() != n {
                    eprintln!(
                        "trace_check: expected {n} rank tracks, found {} ({:?})",
                        report.span_tracks.len(),
                        report.span_tracks
                    );
                    ok = false;
                }
            }
            if let Some(n) = expect_counters {
                if report.counter_names.len() < n {
                    eprintln!(
                        "trace_check: expected at least {n} counter tracks, found {} ({:?})",
                        report.counter_names.len(),
                        report.counter_names
                    );
                    ok = false;
                }
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(errors) => {
            eprintln!("trace_check: {path}: {} problem(s)", errors.len());
            for e in &errors {
                eprintln!("  - {e}");
            }
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("trace_check: {msg}");
    eprintln!("usage: trace_check <trace.json> [--expect-ranks N] [--expect-counters N]");
    ExitCode::FAILURE
}
