//! `obsdiff` — compare two metric snapshots (BENCH_*.json) and report
//! per-metric verdicts with a noise threshold.
//!
//! ```text
//! obsdiff OLD NEW [--threshold FRACTION] [--force] [--json]
//! ```
//!
//! Exit codes: 0 = no regression, 1 = at least one metric regressed,
//! 2 = usage error, unreadable/unparsable input, or mismatched host
//! shapes without `--force`.

use std::process::ExitCode;

use obs::diff::{diff, parse_snapshot, DiffConfig, Snapshot};

const USAGE: &str = "usage: obsdiff OLD NEW [--threshold FRACTION] [--force] [--json]\n\
    \n\
    Compares metric snapshots (bench/2 or bare {\"metrics\":[...]} documents).\n\
    --threshold FRACTION  relative noise threshold (default 0.30 = 30%)\n\
    --force               compare even when host shapes (cores, pool threads) differ\n\
    --json                emit the obsdiff/1 JSON report instead of text\n\
    \n\
    exit codes: 0 clean, 1 regression, 2 usage/parse/host-mismatch";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("obsdiff: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut config = DiffConfig::default();
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--force" => config.force = true,
            "--json" => json = true,
            "--threshold" => {
                let Some(v) = it.next() else {
                    return usage_error("--threshold needs a value");
                };
                match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 && t.is_finite() => config.threshold = t,
                    _ => return usage_error("--threshold must be a non-negative number"),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage_error(&format!("unknown flag {flag:?}"));
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        return usage_error("expected exactly two snapshot paths");
    }
    let (old, new) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => return usage_error(&e),
    };
    match diff(&old, &new, &config) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
            if report.regressions().is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("obsdiff: refusing to compare: {e}");
            ExitCode::from(2)
        }
    }
}
