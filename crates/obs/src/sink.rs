//! Pluggable trace sinks.
//!
//! A [`Sink`] consumes the stream of records a [`crate::Trace`] emits:
//!
//! * [`RingSink`] — a bounded in-memory ring buffer (a flight recorder:
//!   always on, keeps the last N records, never allocates past capacity).
//! * [`JsonlSink`] — one JSON object per line to any `io::Write`; the
//!   format `analyze` and ad-hoc scripts consume.
//! * [`PerfettoSink`] — buffers records and writes a Chrome trace-event
//!   JSON document on flush (see [`crate::perfetto`]).

use std::collections::VecDeque;
use std::io::Write;

use crate::span::{EventRecord, SpanRecord};
use crate::trace::{Trace, TrackTrace};

/// One record streamed out of a trace.
#[derive(Debug, Clone, Copy)]
pub enum Record<'a> {
    /// A closed span.
    Span(&'a SpanRecord),
    /// An instant event.
    Instant(&'a EventRecord),
    /// One counter sample.
    Counter {
        /// Counter-track name.
        name: &'a str,
        /// Display unit.
        unit: &'a str,
        /// Virtual time of the sample, seconds.
        t_s: f64,
        /// Sampled value.
        value: f64,
    },
}

/// An owned copy of a [`Record`] (what [`RingSink`] retains).
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedRecord {
    /// A closed span.
    Span(SpanRecord),
    /// An instant event.
    Instant(EventRecord),
    /// One counter sample.
    Counter {
        /// Counter-track name.
        name: String,
        /// Display unit.
        unit: String,
        /// Virtual time of the sample, seconds.
        t_s: f64,
        /// Sampled value.
        value: f64,
    },
}

/// A consumer of trace records.
pub trait Sink {
    /// Consume one record.
    fn record(&mut self, record: Record<'_>);

    /// Finish writing (I/O sinks).
    ///
    /// # Errors
    /// Returns the underlying I/O error, if any.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A bounded in-memory ring buffer of the most recent records.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    records: VecDeque<OwnedRecord>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            capacity,
            records: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &OwnedRecord> {
        self.records.iter()
    }
}

impl Sink for RingSink {
    fn record(&mut self, record: Record<'_>) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        let owned = match record {
            Record::Span(s) => OwnedRecord::Span(s.clone()),
            Record::Instant(e) => OwnedRecord::Instant(e.clone()),
            Record::Counter {
                name,
                unit,
                t_s,
                value,
            } => OwnedRecord::Counter {
                name: name.to_string(),
                unit: unit.to_string(),
                t_s,
                value,
            },
        };
        self.records.push_back(owned);
    }
}

/// Streams records as JSON Lines to any writer.
///
/// Dropping the sink flushes the writer (best effort), so traces cut
/// short by an early return or a panic still land on disk.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    /// `None` only after `into_inner` disarms the drop-flush.
    writer: Option<W>,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap `writer`.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Some(writer),
            error: None,
        }
    }

    /// Unwrap the writer (e.g. to get the bytes of a `Vec<u8>` back).
    pub fn into_inner(mut self) -> W {
        self.writer.take().expect("writer present until into_inner")
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_none() {
            let writer = self.writer.as_mut().expect("writer present");
            if let Err(e) = writeln!(writer, "{line}") {
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

/// Render one record as a single-line JSON object.
#[must_use]
pub fn record_jsonl(record: Record<'_>) -> String {
    use crate::json::quote;
    match record {
        Record::Span(s) => {
            let mut fields = String::new();
            for (k, v) in &s.fields {
                fields.push_str(&format!(",{}:{}", quote(k), v.to_json()));
            }
            format!(
                "{{\"kind\":\"span\",\"name\":{},\"cat\":{},\"track\":{},\
                 \"start_s\":{},\"end_s\":{},\"depth\":{},\"host_start_ns\":{},\
                 \"host_end_ns\":{},\"forced_close\":{}{}}}",
                quote(&s.name),
                quote(s.cat.name()),
                s.track,
                crate::span::fmt_f64(s.start_s),
                crate::span::fmt_f64(s.end_s),
                s.depth,
                s.host_start_ns,
                s.host_end_ns,
                s.forced_close,
                fields
            )
        }
        Record::Instant(e) => {
            let mut fields = String::new();
            for (k, v) in &e.fields {
                fields.push_str(&format!(",{}:{}", quote(k), v.to_json()));
            }
            format!(
                "{{\"kind\":\"instant\",\"name\":{},\"track\":{},\"time_s\":{}{}}}",
                quote(&e.name),
                e.track,
                crate::span::fmt_f64(e.time_s),
                fields
            )
        }
        Record::Counter {
            name,
            unit,
            t_s,
            value,
        } => format!(
            "{{\"kind\":\"counter\",\"name\":{},\"unit\":{},\"t_s\":{},\"value\":{}}}",
            quote(name),
            quote(unit),
            crate::span::fmt_f64(t_s),
            crate::span::fmt_f64(value)
        ),
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, record: Record<'_>) {
        let line = record_jsonl(record);
        self.write_line(&line);
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.as_mut().expect("writer present").flush()
    }
}

/// Buffers records and renders a Chrome trace-event JSON document on
/// flush. Counter samples are regrouped into counter tracks by name.
#[derive(Debug)]
pub struct PerfettoSink<W: Write> {
    writer: W,
    trace: Trace,
}

impl<W: Write> PerfettoSink<W> {
    /// A sink writing the final document to `writer`, with the given run
    /// name.
    pub fn new(writer: W, run_name: &str) -> Self {
        Self {
            writer,
            trace: Trace::new(run_name),
        }
    }
}

impl<W: Write> Sink for PerfettoSink<W> {
    fn record(&mut self, record: Record<'_>) {
        match record {
            Record::Span(s) => {
                let track = ensure_track(&mut self.trace, s.track);
                track.spans.push(s.clone());
            }
            Record::Instant(e) => {
                let track = ensure_track(&mut self.trace, e.track);
                track.instants.push(e.clone());
            }
            Record::Counter {
                name,
                unit,
                t_s,
                value,
            } => {
                if let Some(c) = self.trace.counters.iter_mut().find(|c| c.name == name) {
                    c.samples.push((t_s, value));
                } else {
                    self.trace.add_counter_track(name, unit, vec![(t_s, value)]);
                }
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let doc = crate::perfetto::render(&self.trace);
        self.writer.write_all(doc.as_bytes())?;
        self.writer.flush()
    }
}

fn ensure_track(trace: &mut Trace, track: usize) -> &mut TrackTrace {
    if let Some(idx) = trace.tracks.iter().position(|t| t.track == track) {
        &mut trace.tracks[idx]
    } else {
        trace.push_track(TrackTrace {
            track,
            ..TrackTrace::default()
        });
        trace.tracks.last_mut().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, TrackRecorder};

    fn sample_trace() -> Trace {
        let mut rec = TrackRecorder::new(0);
        rec.begin_phase("work", 0.0);
        rec.leaf("compute", Category::Compute, 0.0, 0.25, vec![]);
        rec.instant("marker", 0.25, vec![]);
        let mut t = Trace::new("sink-test");
        t.push_track(rec.finish(0.5));
        t.add_counter_track("power", "W", vec![(0.0, 5.0)]);
        t
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let t = sample_trace();
        let mut ring = RingSink::new(2);
        t.emit(&mut ring).unwrap();
        // 2 spans + 1 instant + 1 counter = 4 records, ring keeps last 2.
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 2);
        assert!(!ring.is_empty());
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let t = sample_trace();
        let mut sink = JsonlSink::new(Vec::new());
        t.emit(&mut sink).unwrap();
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            let v = crate::json::parse(line).expect("line parses");
            assert!(v.get("kind").is_some(), "{line}");
        }
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        use std::cell::Cell;
        struct FlushCounter<'a> {
            flushes: &'a Cell<u32>,
        }
        impl Write for FlushCounter<'_> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.flushes.set(self.flushes.get() + 1);
                Ok(())
            }
        }
        let flushes = Cell::new(0);
        {
            let mut sink = JsonlSink::new(FlushCounter { flushes: &flushes });
            sample_trace().emit(&mut sink).unwrap();
            let after_emit = flushes.get();
            drop(sink);
            assert!(flushes.get() > after_emit, "drop must flush the writer");
        }
        // into_inner disarms the drop-flush (the caller owns the writer).
        let flushes2 = Cell::new(0);
        let sink = JsonlSink::new(FlushCounter { flushes: &flushes2 });
        let _writer = sink.into_inner();
        assert_eq!(flushes2.get(), 0);
    }

    #[test]
    fn perfetto_sink_writes_parsable_document() {
        let t = sample_trace();
        let mut sink = PerfettoSink::new(Vec::new(), "sink-test");
        t.emit(&mut sink).unwrap();
        // flush was called by emit; grab bytes via a second sink write.
        // (PerfettoSink keeps the writer; rebuild to inspect.)
        let mut buf = Vec::new();
        {
            let mut sink = PerfettoSink::new(&mut buf, "sink-test");
            t.emit(&mut sink).unwrap();
        }
        let doc = String::from_utf8(buf).unwrap();
        let v = crate::json::parse(&doc).expect("document parses");
        assert!(v.get("traceEvents").is_some());
    }
}
