//! Chrome trace-event JSON export (the format `ui.perfetto.dev` and
//! `chrome://tracing` open directly).
//!
//! Layout: one process (`pid 0`, named after the run), one thread per
//! rank (`tid = rank`, named `rank N`). Spans become `"X"` complete
//! events whose nesting Perfetto infers from containment; instant events
//! become `"i"`; counter tracks (PowerPack power samples) become `"C"`
//! series. Timestamps are **virtual** microseconds — the simulated
//! timeline, not host time (host-time stamps ride along in `args`).

use std::io::Write;
use std::path::Path;

use crate::json::{self, quote, Json};
use crate::trace::Trace;

/// Virtual seconds → trace-event microseconds.
fn us(t_s: f64) -> f64 {
    t_s * 1e6
}

/// Render `trace` as a complete Chrome trace-event JSON document.
#[must_use]
pub fn render(trace: &Trace) -> String {
    let mut events: Vec<String> = Vec::new();

    // Process + thread metadata.
    events.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":{}}}}}",
        quote(&trace.name)
    ));
    for track in &trace.tracks {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{}}}}}",
            track.track,
            quote(&format!("rank {}", track.track))
        ));
        // Perfetto sorts threads by this index: keep rank order.
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{}}}}}",
            track.track, track.track
        ));
    }

    for track in &trace.tracks {
        for span in &track.spans {
            let mut args = format!(
                "\"host_start_ns\":{},\"host_end_ns\":{}",
                span.host_start_ns, span.host_end_ns
            );
            if span.forced_close {
                args.push_str(",\"forced_close\":true");
            }
            for (k, v) in &span.fields {
                let key = if v.unit().is_empty() {
                    (*k).to_string()
                } else {
                    format!("{k} ({})", v.unit())
                };
                args.push_str(&format!(",{}:{}", quote(&key), v.to_json()));
            }
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":{},\"cat\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                span.track,
                quote(&span.name),
                quote(span.cat.name()),
                crate::span::fmt_f64(us(span.start_s)),
                crate::span::fmt_f64(us(span.dur_s()).max(0.0)),
            ));
        }
        for ev in &track.instants {
            let mut args = String::new();
            for (k, v) in &ev.fields {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("{}:{}", quote(k), v.to_json()));
            }
            events.push(format!(
                "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"name\":{},\"s\":\"t\",\
                 \"ts\":{},\"args\":{{{args}}}}}",
                ev.track,
                quote(&ev.name),
                crate::span::fmt_f64(us(ev.time_s)),
            ));
        }
    }

    for counter in &trace.counters {
        let display = if counter.unit.is_empty() {
            counter.name.clone()
        } else {
            format!("{} ({})", counter.name, counter.unit)
        };
        for &(t_s, value) in &counter.samples {
            events.push(format!(
                "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"name\":{},\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                quote(&display),
                crate::span::fmt_f64(us(t_s)),
                crate::span::fmt_f64(value),
            ));
        }
    }

    let mut meta = String::new();
    for (k, v) in &trace.meta {
        meta.push_str(&format!(",{}:{}", quote(k), quote(v)));
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"run\":{}{meta}}},\
         \"traceEvents\":[\n{}\n]}}\n",
        quote(&trace.name),
        events.join(",\n")
    )
}

/// Render `trace` and write it to `path`.
///
/// # Errors
/// Returns the underlying I/O error on failure.
pub fn write_file(trace: &Trace, path: &Path) -> std::io::Result<()> {
    let doc = render(trace);
    let mut file = std::fs::File::create(path)?;
    file.write_all(doc.as_bytes())?;
    file.flush()
}

/// A structural problem found by [`validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError(pub String);

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Summary of a validated trace-event document.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Distinct `tid`s carrying at least one complete (`"X"`) event.
    pub span_tracks: Vec<u64>,
    /// Number of complete events.
    pub span_events: usize,
    /// Distinct counter names.
    pub counter_names: Vec<String>,
    /// Number of counter samples.
    pub counter_events: usize,
}

/// Validate a Chrome trace-event JSON document: it must parse, carry a
/// `traceEvents` array, have finite non-negative timestamps and
/// durations, and per-track monotone (non-decreasing) `"X"` start
/// timestamps at fixed depth order of emission.
///
/// # Errors
/// Returns every structural problem found (empty vector never happens —
/// `Ok` means zero problems).
pub fn validate(document: &str) -> Result<ValidationReport, Vec<ValidationError>> {
    let mut errors = Vec::new();
    let parsed = match json::parse(document) {
        Ok(v) => v,
        Err(e) => return Err(vec![ValidationError(format!("not valid JSON: {e}"))]),
    };
    let Some(events) = parsed.get("traceEvents").and_then(Json::as_arr) else {
        return Err(vec![ValidationError(
            "missing traceEvents array".to_string(),
        )]);
    };

    let mut span_tracks: Vec<u64> = Vec::new();
    let mut counter_names: Vec<String> = Vec::new();
    let mut span_events = 0usize;
    let mut counter_events = 0usize;
    // Per (tid) the last seen "X" ts, to check monotone emission order.
    let mut last_ts: Vec<(u64, f64)> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        match ph {
            "X" => {
                span_events += 1;
                let tid = ev.get("tid").and_then(Json::as_num).unwrap_or(-1.0);
                let ts = ev.get("ts").and_then(Json::as_num);
                let dur = ev.get("dur").and_then(Json::as_num);
                if tid < 0.0 {
                    errors.push(ValidationError(format!("event {i}: missing tid")));
                    continue;
                }
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let tid = tid as u64;
                if !span_tracks.contains(&tid) {
                    span_tracks.push(tid);
                }
                match (ts, dur) {
                    (Some(ts), Some(dur)) => {
                        if !ts.is_finite() || ts < 0.0 {
                            errors.push(ValidationError(format!("event {i}: invalid ts {ts}")));
                        }
                        if !dur.is_finite() || dur < 0.0 {
                            errors.push(ValidationError(format!("event {i}: invalid dur {dur}")));
                        }
                        if let Some(entry) = last_ts.iter_mut().find(|(t, _)| *t == tid) {
                            if ts < entry.1 - 1e-6 {
                                errors.push(ValidationError(format!(
                                    "event {i}: tid {tid} ts {ts} before previous {}",
                                    entry.1
                                )));
                            }
                            entry.1 = entry.1.max(ts);
                        } else {
                            last_ts.push((tid, ts));
                        }
                    }
                    _ => errors.push(ValidationError(format!(
                        "event {i}: X event without numeric ts/dur"
                    ))),
                }
            }
            "C" => {
                counter_events += 1;
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
                if name.is_empty() {
                    errors.push(ValidationError(format!("event {i}: unnamed counter")));
                } else if !counter_names.iter().any(|n| n == name) {
                    counter_names.push(name.to_string());
                }
                let value = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_num);
                if value.is_none() {
                    errors.push(ValidationError(format!(
                        "event {i}: counter without numeric args.value"
                    )));
                }
            }
            "M" | "i" | "I" => {}
            other => errors.push(ValidationError(format!(
                "event {i}: unknown phase {other:?}"
            ))),
        }
    }

    span_tracks.sort_unstable();
    if errors.is_empty() {
        Ok(ValidationReport {
            span_tracks,
            span_events,
            counter_names,
            counter_events,
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, TrackRecorder};

    fn sample_trace(ranks: usize) -> Trace {
        let mut trace = Trace::new("unit-test");
        for r in 0..ranks {
            let mut rec = TrackRecorder::new(r);
            rec.begin_phase("init", 0.0);
            rec.leaf("compute", Category::Compute, 0.0, 0.25, vec![]);
            rec.begin_phase("solve", 0.25);
            rec.enter("mps:allreduce", Category::Collective, 0.3);
            rec.leaf("network", Category::Network, 0.3, 0.4, vec![]);
            rec.exit(0.4, vec![]);
            trace.push_track(rec.finish(1.0));
        }
        trace.add_counter_track("power cpu", "W", vec![(0.0, 30.0), (0.5, 55.0)]);
        trace
    }

    #[test]
    fn rendered_document_validates() {
        let trace = sample_trace(4);
        let doc = render(&trace);
        let report = validate(&doc).expect("valid trace");
        assert_eq!(report.span_tracks, vec![0, 1, 2, 3]);
        assert_eq!(report.counter_names, vec!["power cpu (W)".to_string()]);
        assert!(report.span_events >= 4 * 5);
        assert_eq!(report.counter_events, 2);
    }

    #[test]
    fn validate_rejects_garbage_and_missing_events() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        let bad = r#"{"traceEvents":[{"ph":"X","tid":0,"name":"x"}]}"#;
        assert!(validate(bad).is_err());
    }

    #[test]
    fn validate_flags_negative_duration() {
        let bad = r#"{"traceEvents":[
            {"ph":"X","pid":0,"tid":0,"name":"x","ts":1.0,"dur":-2.0,"args":{}}
        ]}"#;
        let errs = validate(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("invalid dur")));
    }

    #[test]
    fn validate_flags_non_monotone_track() {
        let bad = r#"{"traceEvents":[
            {"ph":"X","pid":0,"tid":0,"name":"a","ts":5.0,"dur":1.0,"args":{}},
            {"ph":"X","pid":0,"tid":0,"name":"b","ts":1.0,"dur":1.0,"args":{}}
        ]}"#;
        let errs = validate(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("before previous")));
    }

    #[test]
    fn write_file_round_trips() {
        let dir = std::env::temp_dir().join("obs-perfetto-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_file(&sample_trace(2), &path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(validate(&doc).is_ok());
        std::fs::remove_file(&path).ok();
    }
}
