//! # obs — unified observability for the simulator stack
//!
//! The paper's methodology rests on *seeing* where time and energy go:
//! PowerPack power traces synchronized with application phases (Fig. 10)
//! and Perfmon/TAU counters feeding the `Mach`/`Appl` vectors. This crate
//! is the software analog of that instrumentation discipline, shared by
//! every crate in the workspace:
//!
//! * [`span`] — a zero-dependency structured tracing core: per-track span
//!   stacks with virtual-time **and** host wall-time timestamps, typed
//!   fields reusing [`simcluster::units`], and instant events.
//! * [`trace`] — the assembled [`Trace`] of a run: one track per rank,
//!   counter tracks (e.g. PowerPack power samples), run metadata.
//! * [`sink`] — pluggable sinks: an in-memory ring buffer, a JSONL
//!   streamer, and a buffered Perfetto sink.
//! * [`perfetto`] — Chrome trace-event JSON export; any run opens in
//!   `ui.perfetto.dev` with one track per rank and compute/memory/net/idle
//!   phases as nested slices.
//! * [`metrics`] — a registry of counters, gauges and fixed-bucket
//!   histograms, all lock-free atomics on the hot path, snapshotted as
//!   text or JSON.
//! * [`profile`] — a critical-path profiler that replays a run's
//!   happens-before graph (message matching + binding waits) and reports
//!   the rank-to-rank critical path, per-span slack, and the top-k spans
//!   by virtual time and by energy.
//! * [`json`] — a minimal JSON parser used by the trace validator (the
//!   workspace builds offline with zero external dependencies).
//!
//! The consumer-facing switch is [`ObsConfig`]: disabled tracing costs a
//! single branch per event in the `mps` runtime.

#![forbid(unsafe_code)]

pub mod config;
pub mod diff;
pub mod flight;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod sink;
pub mod span;
pub mod timeline;
pub mod trace;

pub use config::ObsConfig;
pub use hist::{HistSnapshot, LogHistogram};
pub use metrics::{global, Counter, Gauge, Histogram, Registry};
pub use sink::{JsonlSink, PerfettoSink, Record, RingSink, Sink};
pub use span::{Category, EventRecord, FieldValue, SpanRecord, TrackRecorder};
pub use timeline::Timeline;
pub use trace::{CounterTrack, Trace, TrackTrace};
