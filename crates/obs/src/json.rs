//! A minimal JSON parser and string escaper.
//!
//! The workspace builds fully offline with zero external dependencies, so
//! the trace validator ([`crate::perfetto::validate`], the `trace_check`
//! binary, and the golden-file tests) carries its own ~200-line
//! recursive-descent parser. It accepts strict JSON (RFC 8259) — good
//! enough to round-trip everything this crate emits.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
/// Returns a [`JsonError`] with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Escape and quote a string for JSON output.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept and combine.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x"}"#)
            .expect("valid");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quote\" tab\t unicode: π 🎯";
        let quoted = quote(original);
        let parsed = parse(&quoted).expect("valid");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pair_decodes() {
        let parsed = parse(r#""\ud83c\udfaf""#).expect("valid");
        assert_eq!(parsed.as_str(), Some("🎯"));
    }

    #[test]
    fn control_char_quoting() {
        let quoted = quote("\u{1}");
        assert_eq!(quoted, "\"\\u0001\"");
        assert_eq!(parse(&quoted).unwrap().as_str(), Some("\u{1}"));
    }
}
