//! Log-bucketed (HDR-style) latency/size histograms.
//!
//! [`LogHistogram`] complements the fixed-bucket [`crate::Histogram`]:
//! instead of caller-chosen bounds it uses a *fixed* logarithmic layout —
//! [`SUB_BUCKETS`] buckets per power of two across [`OCTAVES`] octaves
//! starting at [`MIN_TRACKABLE`] — so every instance shares one layout and
//! any two histograms can be merged bucket-by-bucket. Recording is
//! lock-free (relaxed atomics plus CAS loops for the f64 moments), and
//! snapshots report count/sum/mean plus exact min/max and approximate
//! p50/p90/p99 quantiles.
//!
//! ## Quantile semantics (and why merges are sound)
//!
//! `quantile(q)` returns the **upper bound** of the bucket containing the
//! rank-`ceil(q·count)` observation. The returned value is a pure,
//! monotone function of the bucket index, so the classic mixture-quantile
//! bracket holds *exactly*: for any histograms `A` and `B` with the same
//! layout (always true here),
//!
//! ```text
//! min(A.quantile(q), B.quantile(q)) <= merge(A,B).quantile(q)
//!                                   <= max(A.quantile(q), B.quantile(q))
//! ```
//!
//! This is property-tested in `crates/obs/tests/hist_prop.rs`. The price
//! is quantization: a reported quantile overestimates the true value by at
//! most one sub-bucket (`2^(1/16) - 1 ≈ 4.4%`). Values below
//! [`MIN_TRACKABLE`] saturate to it; values above the top bucket saturate
//! to `MIN_TRACKABLE · 2^OCTAVES` (≈ 1.8e10). Exact extremes are always
//! available via `min()`/`max()`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two (relative quantile error ≈ 4.4%).
pub const SUB_BUCKETS: u32 = 16;
/// Powers of two covered above [`MIN_TRACKABLE`].
pub const OCTAVES: u32 = 64;
/// Lower edge of the first log bucket. With seconds as the unit this is
/// 1 ns; with bytes it is simply "1e-9 units" and the underflow bucket
/// catches everything at or below it.
pub const MIN_TRACKABLE: f64 = 1e-9;

/// Total bucket count: underflow + OCTAVES*SUB_BUCKETS + overflow.
const N_BUCKETS: usize = (OCTAVES * SUB_BUCKETS) as usize + 2;

/// Saturation value reported for the overflow bucket.
fn max_trackable() -> f64 {
    MIN_TRACKABLE * f64::from(OCTAVES).exp2()
}

/// A point-in-time summary of a [`LogHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Unit of the recorded values (e.g. `"s"`, `"B"`).
    pub unit: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Mean observation (0 when empty).
    pub mean: f64,
    /// Exact minimum observation (0 when empty).
    pub min: f64,
    /// Exact maximum observation (0 when empty).
    pub max: f64,
    /// Median (bucket upper bound; 0 when empty).
    pub p50: f64,
    /// 90th percentile (bucket upper bound; 0 when empty).
    pub p90: f64,
    /// 99th percentile (bucket upper bound; 0 when empty).
    pub p99: f64,
}

/// A lock-free, mergeable log-bucketed histogram with a typed unit.
#[derive(Debug)]
pub struct LogHistogram {
    unit: String,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// CAS-accumulate `f(current, candidate)` into an f64-bits atomic.
fn cas_f64(cell: &AtomicU64, candidate: f64, f: impl Fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur), candidate).to_bits();
        if next == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

impl LogHistogram {
    /// A fresh histogram whose values carry `unit`.
    #[must_use]
    pub fn new(unit: &str) -> Self {
        Self {
            unit: unit.to_string(),
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Unit of the recorded values.
    #[must_use]
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// Zero every bucket and moment **in place**, back to the
    /// [`LogHistogram::new`] state.
    ///
    /// In place matters: call sites cache their `Arc<LogHistogram>` handle
    /// in a `OnceLock` (the sweep's eval-latency histogram, the pool's
    /// task-latency histograms), so dropping and re-registering the entry
    /// (`Registry::clear`) would orphan those handles — they would keep
    /// recording into a histogram no snapshot reads. Resetting the shared
    /// cells keeps every cached handle live.
    ///
    /// The reset is not atomic as a whole (each cell is cleared with a
    /// relaxed store): quiesce recorders first, or a concurrent `record`
    /// may be partially kept.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }

    /// Bucket index for a value (non-finite values are rejected earlier).
    fn bucket_index(value: f64) -> usize {
        if value <= MIN_TRACKABLE {
            return 0;
        }
        if value >= max_trackable() {
            return N_BUCKETS - 1;
        }
        let octaves = (value / MIN_TRACKABLE).log2();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = 1 + (octaves * f64::from(SUB_BUCKETS)).floor() as usize;
        idx.clamp(1, N_BUCKETS - 2)
    }

    /// Upper bound represented by a bucket (pure function of the index,
    /// which is what makes merged quantiles bracket per-shard quantiles).
    fn bucket_upper(idx: usize) -> f64 {
        if idx == 0 {
            return MIN_TRACKABLE;
        }
        if idx >= N_BUCKETS - 1 {
            return max_trackable();
        }
        #[allow(clippy::cast_precision_loss)]
        {
            MIN_TRACKABLE * (idx as f64 / f64::from(SUB_BUCKETS)).exp2()
        }
    }

    /// Record one observation. Non-finite values are dropped; negative
    /// values saturate into the underflow bucket.
    pub fn record(&self, value: f64) {
        self.record_n(value, 1);
    }

    /// Record `n` observations of `value` in one shot.
    ///
    /// This is the amortization hook for hot loops: time a whole chunk of
    /// work, then `record_n(elapsed / n, n)` so per-item timer overhead
    /// stays out of the measured path.
    pub fn record_n(&self, value: f64, n: u64) {
        if !value.is_finite() || n == 0 {
            return;
        }
        let idx = Self::bucket_index(value);
        self.buckets[idx].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        #[allow(clippy::cast_precision_loss)]
        cas_f64(&self.sum_bits, value * n as f64, |cur, add| cur + add);
        cas_f64(&self.min_bits, value, f64::min);
        cas_f64(&self.max_bits, value, f64::max);
    }

    /// Fold another histogram's contents into this one. Both sides share
    /// the fixed layout, so this is an exact bucket-wise sum; count and
    /// sum are preserved exactly (sum up to f64 addition).
    pub fn merge_from(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let add = theirs.load(Ordering::Relaxed);
            if add > 0 {
                mine.fetch_add(add, Ordering::Relaxed);
            }
        }
        let add_count = other.count.load(Ordering::Relaxed);
        if add_count > 0 {
            self.count.fetch_add(add_count, Ordering::Relaxed);
            cas_f64(&self.sum_bits, other.sum(), |cur, add| cur + add);
            cas_f64(&self.min_bits, other.min_raw(), f64::min);
            cas_f64(&self.max_bits, other.max_raw(), f64::max);
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum() / n as f64
            }
        }
    }

    fn min_raw(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    fn max_raw(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Exact minimum observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.min_raw()
        }
    }

    /// Exact maximum observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.max_raw()
        }
    }

    /// Approximate `q`-quantile for `q` in `(0, 1]`: the upper bound of
    /// the bucket containing the rank-`ceil(q·count)` observation.
    /// Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper(idx);
            }
        }
        // Unreachable when count() agrees with the bucket totals, but a
        // racing reader can observe count ahead of the bucket write.
        Self::bucket_upper(N_BUCKETS - 1)
    }

    /// Current summary (count/sum/mean, exact min/max, p50/p90/p99).
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            unit: self.unit.clone(),
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zeroed() {
        let h = LogHistogram::new("s");
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.unit, "s");
    }

    #[test]
    fn quantiles_bracket_true_values_within_one_subbucket() {
        let h = LogHistogram::new("s");
        for i in 1..=1000u32 {
            h.record(f64::from(i) * 1e-6); // 1µs .. 1ms
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!((s.min - 1e-6).abs() < 1e-18);
        assert!((s.max - 1e-3).abs() < 1e-15);
        // Reported quantile is >= the true value and within ~4.4% + one
        // value step above it.
        let tol = 1.0 + 2.0_f64.powf(1.0 / f64::from(SUB_BUCKETS)) - 1.0 + 0.01;
        assert!(
            s.p50 >= 500e-6 * 0.999 && s.p50 <= 501e-6 * tol,
            "p50={}",
            s.p50
        );
        assert!(
            s.p99 >= 990e-6 * 0.999 && s.p99 <= 991e-6 * tol,
            "p99={}",
            s.p99
        );
        assert!(s.p90 >= s.p50 && s.p99 >= s.p90);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = LogHistogram::new("s");
        let b = LogHistogram::new("s");
        for _ in 0..64 {
            a.record(3.5e-4);
        }
        b.record_n(3.5e-4, 64);
        assert_eq!(a.count(), b.count());
        assert!((a.sum() - b.sum()).abs() < 1e-12);
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
    }

    #[test]
    fn saturation_and_garbage_values() {
        let h = LogHistogram::new("B");
        h.record(f64::NAN); // dropped
        h.record(f64::INFINITY); // dropped
        h.record(-5.0); // underflow bucket
        h.record(0.0); // underflow bucket
        h.record(1e30); // overflow bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.01), MIN_TRACKABLE);
        assert_eq!(h.quantile(1.0), max_trackable());
        assert_eq!(h.max(), 1e30); // exact max survives saturation
    }

    #[test]
    fn merge_is_exact_on_counts_and_monotone_on_quantiles() {
        let a = LogHistogram::new("s");
        let b = LogHistogram::new("s");
        for i in 1..=100u32 {
            a.record(f64::from(i) * 1e-6);
            b.record(f64::from(i) * 1e-3);
        }
        let m = LogHistogram::new("s");
        m.merge_from(&a);
        m.merge_from(&b);
        assert_eq!(m.count(), 200);
        assert!((m.sum() - (a.sum() + b.sum())).abs() < 1e-9);
        assert_eq!(m.min(), a.min());
        assert_eq!(m.max(), b.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            let lo = a.quantile(q).min(b.quantile(q));
            let hi = a.quantile(q).max(b.quantile(q));
            let mq = m.quantile(q);
            assert!(mq >= lo && mq <= hi, "q={q} merged={mq} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn concurrent_records_do_not_lose_updates() {
        let h = LogHistogram::new("s");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000u32 {
                        h.record(f64::from(t * 1000 + i + 1) * 1e-9);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert!(h.max() <= 4000.0 * 1e-9 + 1e-15);
    }
}
