//! Lock-free metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Registration takes a `Mutex` (cold path); the handles returned are
//! `Arc`-shared atomics, so the hot path (incrementing a counter inside
//! a collective, bumping the model-eval counter in a sweep) is a single
//! relaxed atomic op. A process-wide registry is available via
//! [`global`] for call sites that cannot thread a handle through.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::LogHistogram;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 until first set).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with caller-fixed bucket upper bounds.
///
/// `observe(v)` lands in the first bucket whose bound is `>= v`; values
/// above the last bound land in the implicit overflow bucket. Bounds are
/// immutable after construction, so observation is lock-free.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; last is overflow.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, as `f64` bits CAS-accumulated.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop to accumulate an f64 sum without a lock.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum() / n as f64
            }
        }
    }

    /// `(upper_bound, count)` per bucket; the final entry uses
    /// `f64::INFINITY` as the overflow bound.
    #[must_use]
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let mut out: Vec<(f64, u64)> = self
            .bounds
            .iter()
            .zip(&self.buckets)
            .map(|(&b, c)| (b, c.load(Ordering::Relaxed)))
            .collect();
        out.push((
            f64::INFINITY,
            self.buckets[self.bounds.len()].load(Ordering::Relaxed),
        ));
        out
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    LogHist(Arc<LogHistogram>),
}

/// A named collection of metrics.
///
/// Lookup/registration is mutex-guarded; returned handles are shared
/// atomics, safe to cache and hit from any thread.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The histogram named `name` with the given bucket bounds, created
    /// on first use (bounds of an existing histogram are kept).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind,
    /// or if `bounds` is not strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The log-bucketed histogram named `name` recording values in
    /// `unit`, created on first use (the unit of an existing histogram
    /// is kept).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn log_histogram(&self, name: &str, unit: &str) -> Arc<LogHistogram> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::LogHist(Arc::new(LogHistogram::new(unit))))
        {
            Metric::LogHist(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Every registered log-bucketed histogram, sorted by name.
    #[must_use]
    pub fn log_histograms(&self) -> Vec<(String, Arc<LogHistogram>)> {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        metrics
            .iter()
            .filter_map(|(name, metric)| match metric {
                Metric::LogHist(h) => Some((name.clone(), Arc::clone(h))),
                _ => None,
            })
            .collect()
    }

    /// Drop every registered metric (tests; the global registry is
    /// process-wide state).
    ///
    /// Prefer [`Registry::reset_values`] when any call site may have
    /// cached a metric handle: `clear` removes the entries, so cached
    /// `Arc`s keep recording into metrics no snapshot will ever read.
    pub fn clear(&self) {
        self.metrics
            .lock()
            .expect("metrics registry poisoned")
            .clear();
    }

    /// Zero every registered metric **in place**, keeping the entries and
    /// their shared `Arc`s alive — cached handles (e.g. `OnceLock`-stored
    /// histograms in hot paths) continue recording into the same cells.
    ///
    /// Used by benches to isolate cases from each other's warm-up: values
    /// reset, registration state doesn't. Individual cells are cleared
    /// with relaxed stores, so quiesce recorders first.
    pub fn reset_values(&self) {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.bits.store(0f64.to_bits(), Ordering::Relaxed),
                Metric::Histogram(h) => {
                    for b in &h.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.count.store(0, Ordering::Relaxed);
                    h.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
                }
                Metric::LogHist(h) => h.reset(),
            }
        }
    }

    /// Plain-text snapshot, one `name kind value` line per metric,
    /// sorted by name.
    #[must_use]
    pub fn snapshot_text(&self) -> String {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name} counter {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{name} gauge {}\n", crate::span::fmt_f64(g.get())));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "{name} histogram count={} sum={} mean={}\n",
                        h.count(),
                        crate::span::fmt_f64(h.sum()),
                        crate::span::fmt_f64(h.mean())
                    ));
                }
                Metric::LogHist(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!(
                        "{name} loghist unit={} count={} mean={} min={} max={} \
                         p50={} p90={} p99={}\n",
                        s.unit,
                        s.count,
                        crate::span::fmt_f64(s.mean),
                        crate::span::fmt_f64(s.min),
                        crate::span::fmt_f64(s.max),
                        crate::span::fmt_f64(s.p50),
                        crate::span::fmt_f64(s.p90),
                        crate::span::fmt_f64(s.p99)
                    ));
                }
            }
        }
        out
    }

    /// JSON snapshot: `{"metrics":[{"name":...,"kind":...,...}]}`.
    ///
    /// This is the same document shape `BENCH_model_eval.json` uses, so
    /// one parser covers both.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        format!("{{\"metrics\":{}}}\n", self.metrics_json_array())
    }

    /// The bare `[{"name":...,"kind":...,...},...]` metrics array, sorted
    /// by name. Callers embedding metrics in a larger document (e.g. the
    /// `bench/2` snapshot schema with host metadata) splice this in.
    #[must_use]
    pub fn metrics_json_array(&self) -> String {
        use crate::json::quote;
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut entries: Vec<String> = Vec::new();
        for (name, metric) in metrics.iter() {
            let entry = match metric {
                Metric::Counter(c) => format!(
                    "{{\"name\":{},\"kind\":\"counter\",\"value\":{}}}",
                    quote(name),
                    c.get()
                ),
                Metric::Gauge(g) => format!(
                    "{{\"name\":{},\"kind\":\"gauge\",\"value\":{}}}",
                    quote(name),
                    crate::span::fmt_f64(g.get())
                ),
                Metric::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .buckets()
                        .iter()
                        .map(|(bound, count)| {
                            let b = if bound.is_finite() {
                                crate::span::fmt_f64(*bound)
                            } else {
                                "\"inf\"".to_string()
                            };
                            format!("{{\"le\":{b},\"count\":{count}}}")
                        })
                        .collect();
                    format!(
                        "{{\"name\":{},\"kind\":\"histogram\",\"count\":{},\
                         \"sum\":{},\"mean\":{},\"buckets\":[{}]}}",
                        quote(name),
                        h.count(),
                        crate::span::fmt_f64(h.sum()),
                        crate::span::fmt_f64(h.mean()),
                        buckets.join(",")
                    )
                }
                Metric::LogHist(h) => {
                    let s = h.snapshot();
                    format!(
                        "{{\"name\":{},\"kind\":\"loghist\",\"unit\":{},\
                         \"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\
                         \"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                        quote(name),
                        quote(&s.unit),
                        s.count,
                        crate::span::fmt_f64(s.sum),
                        crate::span::fmt_f64(s.mean),
                        crate::span::fmt_f64(s.min),
                        crate::span::fmt_f64(s.max),
                        crate::span::fmt_f64(s.p50),
                        crate::span::fmt_f64(s.p90),
                        crate::span::fmt_f64(s.p99)
                    )
                }
            };
            entries.push(entry);
        }
        format!("[{}]", entries.join(","))
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("mps.messages");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Second lookup shares the same underlying counter.
        assert_eq!(reg.counter("mps.messages").get(), 5);
        let g = reg.gauge("isoee.ee");
        g.set(0.75);
        assert!((reg.gauge("isoee.ee").get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.4).abs() < 1e-9);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (1.0, 2));
        assert_eq!(buckets[1], (10.0, 1));
        assert_eq!(buckets[2].1, 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn snapshots_are_sorted_and_parse() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.gauge("a.gauge").set(1.5);
        reg.histogram("c.hist", &[1.0]).observe(0.5);
        let text = reg.snapshot_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a.gauge gauge"));
        assert!(lines[1].starts_with("b.count counter 2"));
        let json = reg.snapshot_json();
        let doc = crate::json::parse(&json).expect("snapshot parses");
        let metrics = doc.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics[0].get("name").unwrap().as_str(), Some("a.gauge"));
    }

    #[test]
    fn reset_values_keeps_cached_handles_live() {
        let reg = Registry::new();
        let c = reg.counter("evals");
        let g = reg.gauge("speedup");
        let h = reg.histogram("lat", &[1.0]);
        let lh = reg.log_histogram("lat_s", "s");
        c.add(7);
        g.set(2.5);
        h.observe(0.4);
        lh.record(1e-6);
        reg.reset_values();
        // Values are zeroed...
        assert_eq!(c.get(), 0);
        assert!(g.get().abs() < 1e-12);
        assert_eq!(h.count(), 0);
        assert_eq!(lh.snapshot().count, 0);
        // ...but the *same* cells stay registered: the cached handles and
        // fresh lookups are the identical Arc, and recording through the
        // old handle is visible to snapshots.
        assert!(Arc::ptr_eq(&c, &reg.counter("evals")));
        assert!(Arc::ptr_eq(&lh, &reg.log_histogram("lat_s", "s")));
        c.inc();
        lh.record(2e-6);
        assert!(reg.snapshot_text().contains("evals counter 1"));
        assert_eq!(reg.log_histograms()[0].1.snapshot().count, 1);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let reg = Registry::new();
        let c = reg.counter("hot");
        let h = reg.histogram("hist", &[0.5]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(0.25);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 1000.0).abs() < 1e-9);
    }
}
