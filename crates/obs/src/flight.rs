//! Per-thread flight recorder: a fixed ring of recent spans/events,
//! dumped to JSONL when something goes wrong.
//!
//! Every thread that records through this module gets its own bounded
//! ring (capacity `OBS_FLIGHT_CAP`, default 256), registered in a global
//! list so a failure on *any* thread can dump *every* thread's recent
//! history. [`TrackRecorder`](crate::TrackRecorder) mirrors closed spans
//! and instants here automatically, and the failure paths call
//! [`dump`] directly:
//!
//! * the mps runtime, when the deadlock detector fires;
//! * the pool, when a task panics (after recording a `pool.task_panic`
//!   event carrying the task index);
//! * `verify`, when an exploration ends with findings.
//!
//! Dumps land under `OBS_FLIGHT_DIR` (default `target/flight/`) as one
//! JSON object per line, globally ordered by a process-wide sequence
//! number; [`last_dump`] returns the most recent dump path so tests and
//! error reporters can point at the forensic tail. Set `OBS_FLIGHT=0`
//! to disable recording entirely (one relaxed atomic load per event).

use std::cell::OnceCell;
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::quote;
use crate::span::fmt_f64;

/// One recorded event in a thread's flight ring.
#[derive(Debug, Clone)]
struct FlightRecord {
    /// Process-wide sequence number (total order across threads).
    seq: u64,
    /// Record kind (`"span"`, `"instant"`, `"event"`, ...).
    kind: String,
    /// Span/event name.
    name: String,
    /// Virtual time of the record (span end for spans).
    t_s: f64,
    /// Extra `(key, value)` context, rendered as JSON strings.
    fields: Vec<(String, String)>,
}

struct Ring {
    thread: String,
    records: VecDeque<FlightRecord>,
    dropped: u64,
}

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn seq_counter() -> &'static AtomicU64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    &SEQ
}

fn last_dump_slot() -> &'static Mutex<Option<PathBuf>> {
    static LAST: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

/// Whether flight recording is on (`OBS_FLIGHT=0` disables it).
#[must_use]
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("OBS_FLIGHT").map_or(true, |v| v != "0"))
}

/// Per-thread ring capacity (`OBS_FLIGHT_CAP`, default 256).
#[must_use]
pub fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("OBS_FLIGHT_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(256)
    })
}

thread_local! {
    static HANDLE: OnceCell<Arc<Mutex<Ring>>> = const { OnceCell::new() };
}

fn with_ring(f: impl FnOnce(&mut Ring)) {
    HANDLE.with(|cell| {
        let ring = cell.get_or_init(|| {
            let label = std::thread::current().name().map_or_else(
                || format!("{:?}", std::thread::current().id()),
                String::from,
            );
            let ring = Arc::new(Mutex::new(Ring {
                thread: label,
                records: VecDeque::new(),
                dropped: 0,
            }));
            rings()
                .lock()
                .expect("flight registry poisoned")
                .push(Arc::clone(&ring));
            ring
        });
        f(&mut ring.lock().expect("flight ring poisoned"));
    });
}

/// Record an event into the current thread's flight ring.
///
/// `fields` values are plain strings; numbers should be pre-formatted by
/// the caller. No-op when recording is disabled.
pub fn record(name: &str, kind: &str, t_s: f64, fields: &[(&str, String)]) {
    if !enabled() {
        return;
    }
    let seq = seq_counter().fetch_add(1, Ordering::Relaxed);
    let record = FlightRecord {
        seq,
        kind: kind.to_string(),
        name: name.to_string(),
        t_s,
        fields: fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    };
    with_ring(|ring| {
        if ring.records.len() == capacity() {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(record);
    });
}

fn render_jsonl(reason: &str) -> String {
    let rings = rings().lock().expect("flight registry poisoned");
    let mut all: Vec<(String, FlightRecord)> = Vec::new();
    let mut dropped = 0u64;
    for ring in rings.iter() {
        let ring = ring.lock().expect("flight ring poisoned");
        dropped += ring.dropped;
        for rec in &ring.records {
            all.push((ring.thread.clone(), rec.clone()));
        }
    }
    drop(rings);
    all.sort_by_key(|(_, r)| r.seq);
    let mut out = format!(
        "{{\"flight\":{},\"records\":{},\"dropped\":{}}}\n",
        quote(reason),
        all.len(),
        dropped
    );
    for (thread, rec) in &all {
        let fields: Vec<String> = rec
            .fields
            .iter()
            .map(|(k, v)| format!("{}:{}", quote(k), quote(v)))
            .collect();
        out.push_str(&format!(
            "{{\"seq\":{},\"thread\":{},\"kind\":{},\"name\":{},\"t_s\":{},\"fields\":{{{}}}}}\n",
            rec.seq,
            quote(thread),
            quote(&rec.kind),
            quote(&rec.name),
            fmt_f64(rec.t_s),
            fields.join(",")
        ));
    }
    out
}

/// The flight tail of every thread as a JSONL string (header line with
/// the dump reason, then records in global sequence order).
#[must_use]
pub fn dump_string(reason: &str) -> String {
    render_jsonl(reason)
}

/// Dump every thread's flight tail to a JSONL file under
/// `OBS_FLIGHT_DIR` (default `target/flight/`).
///
/// Best-effort by design: returns `None` when recording is disabled or
/// the dump directory is not writable — a forensic dump must never turn
/// a failure into a different failure.
pub fn dump(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::var("OBS_FLIGHT_DIR").unwrap_or_else(|_| "target/flight".to_string());
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let n = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{reason}-{}-{n}.jsonl", std::process::id()));
    let body = render_jsonl(reason);
    let mut file = std::fs::File::create(&path).ok()?;
    file.write_all(body.as_bytes()).ok()?;
    file.flush().ok()?;
    *last_dump_slot().lock().expect("flight last-dump poisoned") = Some(path.clone());
    Some(path)
}

/// Path of the most recent [`dump`] in this process, if any.
#[must_use]
pub fn last_dump() -> Option<PathBuf> {
    last_dump_slot()
        .lock()
        .expect("flight last-dump poisoned")
        .clone()
}

/// Empty every thread's ring (tests; rings themselves stay registered).
pub fn clear() {
    let rings = rings().lock().expect("flight registry poisoned");
    for ring in rings.iter() {
        let mut ring = ring.lock().expect("flight ring poisoned");
        ring.records.clear();
        ring.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_ordered_and_rendered() {
        record("phase:a", "span", 1.0, &[("rank", "0".to_string())]);
        record("b", "instant", 2.0, &[]);
        let dump = dump_string("test");
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines[0].contains("\"flight\":\"test\""));
        assert!(dump.contains("\"name\":\"phase:a\""));
        assert!(dump.contains("\"rank\":\"0\""));
        // JSONL lines parse with the in-tree parser.
        for line in &lines {
            crate::json::parse(line).expect("flight line parses");
        }
    }

    #[test]
    fn rings_from_other_threads_are_visible() {
        std::thread::spawn(|| {
            record("worker.event", "event", 0.5, &[("k", "v".to_string())]);
        })
        .join()
        .expect("thread");
        assert!(dump_string("cross-thread").contains("worker.event"));
    }

    #[test]
    fn ring_is_bounded() {
        for i in 0..(capacity() + 10) {
            record(&format!("e{i}"), "event", 0.0, &[]);
        }
        let dump = dump_string("bounded");
        // Header reports the eviction count; the earliest events are gone.
        assert!(!dump.contains("\"name\":\"e0\""));
        assert!(dump.contains(&format!("\"name\":\"e{}\"", capacity() + 9)));
    }
}
