//! Bounded time-series rings for power/utilization timelines.
//!
//! A [`Timeline`] holds a set of named series, each a bounded ring of
//! `(t_s, value)` samples with a unit. Producers push samples directly
//! ([`Timeline::record`]) or by sampling gauges out of a metrics
//! [`Registry`] at a point in virtual time ([`Timeline::sample_gauges`]):
//! power draw from `powerpack` profiles, pool queue depth, EE drift.
//! When the ring is full the oldest sample is evicted and counted in
//! `dropped`, so a long-running producer costs bounded memory.
//!
//! Timelines export as Perfetto [`CounterTrack`]s ([`Timeline::attach`]),
//! which the existing trace validator and `analyze --trace` conformance
//! pass accept — power/utilization timelines render next to span tracks
//! in `ui.perfetto.dev`.

use std::collections::VecDeque;

use crate::metrics::Registry;
use crate::trace::{CounterTrack, Trace};

/// One bounded series of `(t_s, value)` samples.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series name (becomes the counter-track name).
    pub name: String,
    /// Unit of the sampled values (e.g. `"W"`, `"tasks"`).
    pub unit: String,
    /// Retained samples, oldest first.
    pub samples: VecDeque<(f64, f64)>,
    /// Samples evicted because the ring was full.
    pub dropped: u64,
}

/// A bounded multi-series time-series ring.
#[derive(Debug, Clone)]
pub struct Timeline {
    capacity: usize,
    series: Vec<Series>,
}

impl Timeline {
    /// A timeline whose series each retain at most `capacity` samples
    /// (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            series: Vec::new(),
        }
    }

    /// Per-series sample capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained series, in first-recorded order.
    #[must_use]
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    fn series_mut(&mut self, name: &str, unit: &str) -> &mut Series {
        if let Some(idx) = self.series.iter().position(|s| s.name == name) {
            return &mut self.series[idx];
        }
        self.series.push(Series {
            name: name.to_string(),
            unit: unit.to_string(),
            samples: VecDeque::new(),
            dropped: 0,
        });
        let last = self.series.len() - 1;
        &mut self.series[last]
    }

    /// Append a sample to `name` (creating the series with `unit` on
    /// first use; the unit of an existing series is kept). Non-finite
    /// samples are dropped — the Perfetto validator rejects them.
    pub fn record(&mut self, name: &str, unit: &str, t_s: f64, value: f64) {
        if !t_s.is_finite() || !value.is_finite() {
            return;
        }
        let cap = self.capacity;
        let series = self.series_mut(name, unit);
        if series.samples.len() == cap {
            series.samples.pop_front();
            series.dropped += 1;
        }
        series.samples.push_back((t_s, value));
    }

    /// Sample the named gauges from `registry` at virtual time `t_s`:
    /// one `(name, unit)` pair per series. Gauges that were never set
    /// sample as 0.
    pub fn sample_gauges(&mut self, registry: &Registry, gauges: &[(&str, &str)], t_s: f64) {
        for &(name, unit) in gauges {
            let value = registry.gauge(name).get();
            self.record(name, unit, t_s, value);
        }
    }

    /// The retained samples as Perfetto counter tracks. Samples within a
    /// series are emitted in recorded order; producers sampling a clock
    /// keep them time-ordered, which the trace validator checks.
    #[must_use]
    pub fn counter_tracks(&self) -> Vec<CounterTrack> {
        self.series
            .iter()
            .filter(|s| !s.samples.is_empty())
            .map(|s| CounterTrack {
                name: s.name.clone(),
                unit: s.unit.clone(),
                samples: s.samples.iter().copied().collect(),
            })
            .collect()
    }

    /// Attach every non-empty series to `trace` as a counter track.
    pub fn attach(&self, trace: &mut Trace) {
        for track in self.counter_tracks() {
            trace.counters.push(track);
        }
    }

    /// Total samples dropped across series due to ring eviction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.series.iter().map(|s| s.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut tl = Timeline::new(3);
        for i in 0..5 {
            tl.record("power.cpu", "W", f64::from(i), 10.0 + f64::from(i));
        }
        let s = &tl.series()[0];
        assert_eq!(s.samples.len(), 3);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.samples.front().copied(), Some((2.0, 12.0)));
        assert_eq!(tl.dropped(), 2);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut tl = Timeline::new(8);
        tl.record("x", "", f64::NAN, 1.0);
        tl.record("x", "", 0.0, f64::INFINITY);
        tl.record("x", "", 1.0, 2.0);
        assert_eq!(tl.series()[0].samples.len(), 1);
    }

    #[test]
    fn gauge_sampling_and_attach() {
        let reg = Registry::new();
        reg.gauge("pool.queue_depth").set(7.0);
        reg.gauge("isoee.validate.drift_pct").set(1.25);
        let mut tl = Timeline::new(16);
        tl.sample_gauges(
            &reg,
            &[
                ("pool.queue_depth", "tasks"),
                ("isoee.validate.drift_pct", "%"),
            ],
            0.5,
        );
        tl.sample_gauges(
            &reg,
            &[
                ("pool.queue_depth", "tasks"),
                ("isoee.validate.drift_pct", "%"),
            ],
            1.0,
        );
        let mut trace = Trace::new("tl");
        tl.attach(&mut trace);
        assert_eq!(trace.counters.len(), 2);
        assert_eq!(trace.counters[0].samples, vec![(0.5, 7.0), (1.0, 7.0)]);
        assert_eq!(trace.counters[1].unit, "%");
    }
}
