//! The structured tracing core: spans, instant events, typed fields, and
//! the per-track recorder.
//!
//! A *span* is a named interval of a rank's (track's) execution, carrying
//! both **virtual-time** endpoints (simulated seconds — what Perfetto
//! renders) and **host wall-time** endpoints (nanoseconds since the
//! recorder's epoch — what you profile the simulator itself with). Spans
//! nest: the recorder keeps a stack per track, so a collective span opened
//! inside a phase span closes before the phase does.
//!
//! Field values are typed via [`FieldValue`], reusing the workspace's
//! dimensional-unit newtypes, so a trace never loses its units on the way
//! to disk.

use std::time::Instant;

use simcluster::units::{Joules, Seconds, Watts};

/// What kind of activity a span covers (rendered as the Perfetto `cat`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// A top-level application phase (from `Ctx::phase` markers).
    Phase,
    /// A collective operation (barrier, allreduce, alltoall, …).
    Collective,
    /// On-chip computation charge.
    Compute,
    /// Off-chip memory charge.
    Memory,
    /// Network (point-to-point message) charge.
    Network,
    /// Local I/O charge.
    Io,
    /// Blocked waiting for a message.
    Wait,
    /// Anything else (user-defined spans).
    Other,
}

impl Category {
    /// Stable lowercase name (used in exports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Category::Phase => "phase",
            Category::Collective => "collective",
            Category::Compute => "compute",
            Category::Memory => "memory",
            Category::Network => "network",
            Category::Io => "io",
            Category::Wait => "wait",
            Category::Other => "other",
        }
    }

    /// True for the leaf charge categories that mirror
    /// [`simcluster::SegmentKind`] work charges.
    #[must_use]
    pub fn is_charge(self) -> bool {
        matches!(
            self,
            Category::Compute
                | Category::Memory
                | Category::Network
                | Category::Io
                | Category::Wait
        )
    }
}

/// A typed field value. Unit-carrying variants reuse
/// [`simcluster::units`] so exports can render the unit.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A dimensionless count.
    U64(u64),
    /// A dimensionless float.
    F64(f64),
    /// A duration.
    Seconds(Seconds),
    /// An energy.
    Joules(Joules),
    /// A power.
    Watts(Watts),
    /// Free text.
    Str(String),
}

impl FieldValue {
    /// The value as JSON fragment (numbers bare, strings quoted).
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::F64(v) => fmt_f64(*v),
            FieldValue::Seconds(v) => fmt_f64(v.raw()),
            FieldValue::Joules(v) => fmt_f64(v.raw()),
            FieldValue::Watts(v) => fmt_f64(v.raw()),
            FieldValue::Str(s) => crate::json::quote(s),
        }
    }

    /// The numeric value, if the field is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match self {
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::F64(v) => Some(*v),
            FieldValue::Seconds(v) => Some(v.raw()),
            FieldValue::Joules(v) => Some(v.raw()),
            FieldValue::Watts(v) => Some(v.raw()),
            FieldValue::Str(_) => None,
        }
    }

    /// The unit suffix carried by the value (empty for dimensionless).
    #[must_use]
    pub fn unit(&self) -> &'static str {
        match self {
            FieldValue::U64(_) | FieldValue::F64(_) | FieldValue::Str(_) => "",
            FieldValue::Seconds(_) => "s",
            FieldValue::Joules(_) => "J",
            FieldValue::Watts(_) => "W",
        }
    }
}

/// Render a float so it round-trips through JSON (never `NaN`/`inf`,
/// which JSON cannot carry — those become `null`).
#[must_use]
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A closed span: one slice on one track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `ft:forward`, `mps:allreduce`, `compute`).
    pub name: String,
    /// Activity category.
    pub cat: Category,
    /// Track (rank) the span belongs to.
    pub track: usize,
    /// Virtual-time start, seconds.
    pub start_s: f64,
    /// Virtual-time end, seconds.
    pub end_s: f64,
    /// Nesting depth at close time (0 = top level).
    pub depth: usize,
    /// Host wall-clock start, nanoseconds since the recorder's epoch.
    pub host_start_ns: u64,
    /// Host wall-clock end, nanoseconds since the recorder's epoch.
    pub host_end_ns: u64,
    /// True when the span was still open at rank finish and the recorder
    /// force-closed it (a conformance finding for `analyze`).
    pub forced_close: bool,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Virtual duration of the span.
    #[must_use]
    pub fn dur_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// An instant event (zero duration) on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name.
    pub name: String,
    /// Track (rank).
    pub track: usize,
    /// Virtual time, seconds.
    pub time_s: f64,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Mirror a just-closed span or instant into the current thread's
/// flight-recorder ring (see [`crate::flight`]). Recorders live on the
/// thread that owns the track, so the ring attribution is correct.
fn mirror_to_flight(
    kind: &str,
    name: &str,
    track: usize,
    t_s: f64,
    fields: &[(&'static str, FieldValue)],
) {
    if !crate::flight::enabled() {
        return;
    }
    let mut out: Vec<(&str, String)> = Vec::with_capacity(fields.len() + 1);
    out.push(("track", track.to_string()));
    for (k, v) in fields {
        out.push((k, v.to_json()));
    }
    crate::flight::record(name, kind, t_s, &out);
}

/// An open span on the recorder's stack.
#[derive(Debug, Clone)]
struct OpenSpan {
    name: String,
    cat: Category,
    start_s: f64,
    host_start_ns: u64,
}

/// Per-track span recorder: a span stack plus the closed-record log.
///
/// One recorder lives on each simulated rank's thread (the "thread-local
/// span stack" — ranks are threads in `mps`), so recording never takes a
/// lock. The runtime collects recorders into a [`crate::Trace`] when the
/// run finishes.
#[derive(Debug)]
pub struct TrackRecorder {
    track: usize,
    epoch: Instant,
    stack: Vec<OpenSpan>,
    phase: Option<OpenSpan>,
    spans: Vec<SpanRecord>,
    instants: Vec<EventRecord>,
}

impl TrackRecorder {
    /// A fresh recorder for `track` (its host epoch is `now`).
    #[must_use]
    pub fn new(track: usize) -> Self {
        Self {
            track,
            epoch: Instant::now(),
            stack: Vec::new(),
            phase: None,
            spans: Vec::new(),
            instants: Vec::new(),
        }
    }

    /// The track id.
    #[must_use]
    pub fn track(&self) -> usize {
        self.track
    }

    /// Nanoseconds of host time since the recorder was created.
    fn host_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Current nesting depth (phase counts as one level).
    #[must_use]
    pub fn depth(&self) -> usize {
        usize::from(self.phase.is_some()) + self.stack.len()
    }

    /// Begin (or switch) the track's top-level phase span at virtual time
    /// `t_s`. The previous phase, if any, closes at `t_s`.
    pub fn begin_phase(&mut self, name: &str, t_s: f64) {
        self.end_phase(t_s, false);
        self.phase = Some(OpenSpan {
            name: name.to_string(),
            cat: Category::Phase,
            start_s: t_s,
            host_start_ns: self.host_ns(),
        });
    }

    /// Close the open phase span (if any) at `t_s`.
    fn end_phase(&mut self, t_s: f64, forced: bool) {
        if let Some(open) = self.phase.take() {
            let host_end_ns = self.host_ns();
            mirror_to_flight("phase", &open.name, self.track, t_s, &[]);
            self.spans.push(SpanRecord {
                name: open.name,
                cat: open.cat,
                track: self.track,
                start_s: open.start_s,
                end_s: t_s.max(open.start_s),
                depth: 0,
                host_start_ns: open.host_start_ns,
                host_end_ns,
                forced_close: forced,
                fields: Vec::new(),
            });
        }
    }

    /// Open a nested span at virtual time `t_s`.
    pub fn enter(&mut self, name: &str, cat: Category, t_s: f64) {
        self.stack.push(OpenSpan {
            name: name.to_string(),
            cat,
            start_s: t_s,
            host_start_ns: self.host_ns(),
        });
    }

    /// Close the innermost open span at virtual time `t_s`.
    ///
    /// # Panics
    /// Panics when no span is open (an exit without a matching enter is a
    /// bug in the instrumentation, not in the program under test).
    pub fn exit(&mut self, t_s: f64, fields: Vec<(&'static str, FieldValue)>) {
        let open = self.stack.pop().expect("span exit without an open span");
        let depth = self.depth();
        let host_end_ns = self.host_ns();
        mirror_to_flight("span", &open.name, self.track, t_s, &fields);
        self.spans.push(SpanRecord {
            name: open.name,
            cat: open.cat,
            track: self.track,
            start_s: open.start_s,
            end_s: t_s.max(open.start_s),
            depth,
            host_start_ns: open.host_start_ns,
            host_end_ns,
            forced_close: false,
            fields,
        });
    }

    /// Record a complete leaf span `[start_s, end_s]` in one call (used
    /// for work charges, which are known only when they finish).
    pub fn leaf(
        &mut self,
        name: &str,
        cat: Category,
        start_s: f64,
        end_s: f64,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let host = self.host_ns();
        let depth = self.depth();
        mirror_to_flight("span", name, self.track, end_s, &fields);
        self.spans.push(SpanRecord {
            name: name.to_string(),
            cat,
            track: self.track,
            start_s,
            end_s: end_s.max(start_s),
            depth,
            host_start_ns: host,
            host_end_ns: host,
            forced_close: false,
            fields,
        });
    }

    /// Record an instant event at virtual time `t_s`.
    pub fn instant(&mut self, name: &str, t_s: f64, fields: Vec<(&'static str, FieldValue)>) {
        mirror_to_flight("instant", name, self.track, t_s, &fields);
        self.instants.push(EventRecord {
            name: name.to_string(),
            track: self.track,
            time_s: t_s,
            fields,
        });
    }

    /// Finish the track at virtual time `t_s`: force-close every open span
    /// (marking it `forced_close` unless the track ended cleanly) and
    /// return the track's trace, sorted by start time.
    #[must_use]
    pub fn finish(mut self, t_s: f64) -> crate::trace::TrackTrace {
        // Anything still on the stack did not close before rank finish.
        while let Some(open) = self.stack.pop() {
            let depth = self.depth();
            let host_end_ns = self.host_ns();
            self.spans.push(SpanRecord {
                name: open.name,
                cat: open.cat,
                track: self.track,
                start_s: open.start_s,
                end_s: t_s.max(open.start_s),
                depth,
                host_start_ns: open.host_start_ns,
                host_end_ns,
                forced_close: true,
                fields: Vec::new(),
            });
        }
        // A phase open at finish is normal (phases end at rank finish by
        // construction), so it closes cleanly.
        self.end_phase(t_s, false);
        self.spans.sort_by(|a, b| {
            a.start_s
                .partial_cmp(&b.start_s)
                .expect("finite span times")
                .then(a.depth.cmp(&b.depth))
        });
        crate::trace::TrackTrace {
            track: self.track,
            spans: self.spans,
            instants: self.instants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_close_in_lifo_order() {
        let mut r = TrackRecorder::new(0);
        r.begin_phase("phase-a", 0.0);
        r.enter("outer", Category::Collective, 0.1);
        r.enter("inner", Category::Network, 0.2);
        r.exit(0.3, vec![]);
        r.exit(0.5, vec![]);
        let t = r.finish(1.0);
        assert_eq!(t.spans.len(), 3);
        let inner = t.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = t.spans.iter().find(|s| s.name == "outer").unwrap();
        let phase = t.spans.iter().find(|s| s.name == "phase-a").unwrap();
        assert!(inner.depth > outer.depth);
        assert_eq!(phase.depth, 0);
        assert!(phase.start_s <= outer.start_s && outer.end_s <= phase.end_s);
        assert!(!inner.forced_close && !outer.forced_close && !phase.forced_close);
    }

    #[test]
    fn unclosed_span_is_forced_at_finish() {
        let mut r = TrackRecorder::new(2);
        r.enter("leak", Category::Other, 0.5);
        let t = r.finish(2.0);
        assert_eq!(t.spans.len(), 1);
        assert!(t.spans[0].forced_close);
        assert_eq!(t.spans[0].end_s, 2.0);
        assert_eq!(t.track, 2);
    }

    #[test]
    fn phase_switch_closes_previous_phase() {
        let mut r = TrackRecorder::new(0);
        r.begin_phase("init", 0.0);
        r.begin_phase("solve", 1.0);
        let t = r.finish(3.0);
        let init = t.spans.iter().find(|s| s.name == "init").unwrap();
        let solve = t.spans.iter().find(|s| s.name == "solve").unwrap();
        assert_eq!((init.start_s, init.end_s), (0.0, 1.0));
        assert_eq!((solve.start_s, solve.end_s), (1.0, 3.0));
    }

    #[test]
    fn leaf_records_fields_and_depth() {
        let mut r = TrackRecorder::new(0);
        r.begin_phase("p", 0.0);
        r.leaf(
            "compute",
            Category::Compute,
            0.0,
            0.5,
            vec![("instructions", FieldValue::F64(1e6))],
        );
        let t = r.finish(0.5);
        let leaf = t.spans.iter().find(|s| s.name == "compute").unwrap();
        assert_eq!(leaf.depth, 1);
        assert_eq!(leaf.fields[0].0, "instructions");
    }

    #[test]
    fn host_timestamps_are_monotone() {
        let mut r = TrackRecorder::new(0);
        r.enter("a", Category::Other, 0.0);
        r.exit(1.0, vec![]);
        let t = r.finish(1.0);
        assert!(t.spans[0].host_end_ns >= t.spans[0].host_start_ns);
    }

    #[test]
    fn field_value_json_and_units() {
        assert_eq!(FieldValue::U64(3).to_json(), "3");
        assert_eq!(FieldValue::Seconds(Seconds::new(1.5)).unit(), "s");
        assert_eq!(FieldValue::Joules(Joules::new(2.0)).unit(), "J");
        assert_eq!(FieldValue::Str("a\"b".into()).to_json(), "\"a\\\"b\"");
        assert_eq!(FieldValue::F64(f64::NAN).to_json(), "null");
    }
}
