//! Runtime observability configuration.
//!
//! An [`ObsConfig`] rides on the simulator's `World`; every instrumented
//! call site checks `trace` (one branch) before touching a recorder, so
//! a disabled config costs a single predictable branch per event.

use std::path::{Path, PathBuf};

/// What to record and where to write it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record spans and instant events.
    pub trace: bool,
    /// Update the metrics registry (counters/gauges/histograms).
    pub metrics: bool,
    /// Write a Chrome/Perfetto trace-event JSON document here at run end.
    pub perfetto_path: Option<PathBuf>,
    /// Write the trace as JSON Lines here at run end.
    pub jsonl_path: Option<PathBuf>,
}

impl ObsConfig {
    /// Everything off: the zero-overhead default.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Tracing and metrics on, no file output (trace available in
    /// memory on the run report).
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            trace: true,
            metrics: true,
            perfetto_path: None,
            jsonl_path: None,
        }
    }

    /// Tracing and metrics on, Perfetto JSON written to `path` at run
    /// end — the one-liner quickstart:
    /// `World::new(...).with_obs(ObsConfig::perfetto("run.json"))`.
    #[must_use]
    pub fn perfetto(path: impl AsRef<Path>) -> Self {
        Self {
            perfetto_path: Some(path.as_ref().to_path_buf()),
            ..Self::enabled()
        }
    }

    /// Tracing and metrics on, JSON Lines written to `path` at run end.
    #[must_use]
    pub fn jsonl(path: impl AsRef<Path>) -> Self {
        Self {
            jsonl_path: Some(path.as_ref().to_path_buf()),
            ..Self::enabled()
        }
    }

    /// Toggle metrics collection.
    #[must_use]
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// True when any recording is active.
    #[must_use]
    pub fn any_enabled(&self) -> bool {
        self.trace || self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_flags() {
        assert!(!ObsConfig::disabled().any_enabled());
        assert!(ObsConfig::enabled().trace);
        let p = ObsConfig::perfetto("run.json");
        assert!(p.trace && p.metrics);
        assert_eq!(p.perfetto_path.as_deref(), Some(Path::new("run.json")));
        let j = ObsConfig::jsonl("run.jsonl").with_metrics(false);
        assert!(j.trace && !j.metrics);
        assert_eq!(j.jsonl_path.as_deref(), Some(Path::new("run.jsonl")));
    }
}
