//! Bench-snapshot diffing: the regression sentinel's core.
//!
//! Parses two metric snapshots (`bench/2` documents with host metadata,
//! or bare PR-2-era `{"metrics":[...]}` documents), pairs metrics by
//! name, and computes a per-metric verdict with a noise threshold.
//! Consumed by the `obsdiff` binary and by `analyze --bench-diff`.
//!
//! ## Direction conventions
//!
//! Whether a change is a regression depends on what the metric measures;
//! the differ infers the direction from the name and kind:
//!
//! * `*.ns_per_iter`, `*.min_ns_per_iter` — lower is better;
//! * `*.throughput_per_s`, `*.throughput_per_thread_per_s`, `*speedup*`
//!   — higher is better;
//! * `loghist` metrics with a time unit (`"s"`, `"ns"`) — lower is
//!   better, compared on p99 (tail latency is what regresses first);
//! * everything else is informational: reported, never gated on.
//!
//! ## Host-shape guard
//!
//! Comparing numbers recorded on different machines is how "speedup ≈ 1"
//! baselines sneak in; [`diff`] refuses when core count or pool width
//! differ (or when either side lacks host metadata while the other has
//! it) unless `force` is set. A forced diff still reports the mismatch.

use std::collections::BTreeMap;

use crate::json::{parse, quote, Json};
use crate::span::fmt_f64;

/// Default relative noise threshold (30%): single-core CI containers
/// jitter double-digit percentages; see `.github/workflows/ci.yml`.
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// Host metadata embedded in a `bench/2` snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HostMeta {
    /// Available cores on the recording host.
    pub cores: u64,
    /// Effective `POOL_THREADS` of the run.
    pub pool_threads: u64,
    /// Abbreviated git revision of the recording checkout.
    pub git_rev: String,
    /// Unix timestamp of the recording.
    pub recorded_unix: u64,
}

impl HostMeta {
    fn from_json(host: &Json) -> Self {
        let num = |key: &str| -> u64 { host.get(key).and_then(Json::as_num).unwrap_or(0.0) as u64 };
        Self {
            cores: num("cores"),
            pool_threads: num("pool_threads"),
            git_rev: host
                .get("git_rev")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            recorded_unix: num("recorded_unix"),
        }
    }

    /// Render as the `bench/2` host object (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cores\":{},\"pool_threads\":{},\"git_rev\":{},\"recorded_unix\":{}}}",
            self.cores,
            self.pool_threads,
            quote(&self.git_rev),
            self.recorded_unix
        )
    }
}

/// One parsed metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// `kind: "counter"`.
    Counter(u64),
    /// `kind: "gauge"`.
    Gauge(f64),
    /// `kind: "histogram"` (fixed-bucket; compared on mean).
    Histogram {
        /// Observation count.
        count: u64,
        /// Mean observation.
        mean: f64,
    },
    /// `kind: "loghist"` (compared on p99).
    LogHist {
        /// Unit of the recorded values.
        unit: String,
        /// Observation count.
        count: u64,
        /// Mean observation.
        mean: f64,
        /// Median.
        p50: f64,
        /// 99th percentile.
        p99: f64,
        /// Exact maximum.
        max: f64,
    },
}

impl MetricValue {
    /// The scalar this metric is compared on.
    #[must_use]
    pub fn comparable(&self) -> f64 {
        match self {
            #[allow(clippy::cast_precision_loss)]
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Histogram { mean, .. } => *mean,
            MetricValue::LogHist { p99, .. } => *p99,
        }
    }
}

/// A parsed snapshot: optional host metadata plus metrics by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Host metadata (`None` for bare PR-2-era documents).
    pub host: Option<HostMeta>,
    /// Metrics keyed by name (sorted — `BTreeMap` keeps diff output
    /// deterministic).
    pub metrics: BTreeMap<String, MetricValue>,
}

/// Parse a snapshot document (either `bench/2` or bare `{"metrics":[...]}`).
///
/// # Errors
/// Returns a message when the document is not JSON or lacks a `metrics`
/// array of well-formed entries.
pub fn parse_snapshot(text: &str) -> Result<Snapshot, String> {
    let doc = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let host = doc.get("host").map(HostMeta::from_json);
    let arr = doc
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing \"metrics\" array".to_string())?;
    let mut metrics = BTreeMap::new();
    for entry in arr {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "metric entry without \"name\"".to_string())?;
        let kind = entry.get("kind").and_then(Json::as_str).unwrap_or("");
        let num = |key: &str| entry.get(key).and_then(Json::as_num).unwrap_or(0.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let value = match kind {
            "counter" => MetricValue::Counter(num("value") as u64),
            "gauge" => MetricValue::Gauge(num("value")),
            "histogram" => MetricValue::Histogram {
                count: num("count") as u64,
                mean: num("mean"),
            },
            "loghist" => MetricValue::LogHist {
                unit: entry
                    .get("unit")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                count: num("count") as u64,
                mean: num("mean"),
                p50: num("p50"),
                p99: num("p99"),
                max: num("max"),
            },
            other => return Err(format!("metric {name:?} has unknown kind {other:?}")),
        };
        metrics.insert(name.to_string(), value);
    }
    Ok(Snapshot { host, metrics })
}

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller values are better (latencies).
    LowerIsBetter,
    /// Larger values are better (throughput, speedup).
    HigherIsBetter,
    /// Changes are reported but never gate.
    Informational,
}

impl Direction {
    /// Stable lowercase name for JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower_is_better",
            Direction::HigherIsBetter => "higher_is_better",
            Direction::Informational => "informational",
        }
    }
}

/// Infer the comparison direction from a metric's name and value.
#[must_use]
pub fn direction_for(name: &str, value: &MetricValue) -> Direction {
    if name.ends_with(".ns_per_iter") || name.ends_with(".min_ns_per_iter") {
        return Direction::LowerIsBetter;
    }
    if name.ends_with(".throughput_per_s")
        || name.ends_with(".throughput_per_thread_per_s")
        || name.contains("speedup")
    {
        return Direction::HigherIsBetter;
    }
    if let MetricValue::LogHist { unit, .. } = value {
        if unit == "s" || unit == "ns" {
            return Direction::LowerIsBetter;
        }
    }
    Direction::Informational
}

/// Per-metric verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Worse than the baseline by more than the threshold.
    Regressed,
    /// Better than the baseline by more than the threshold.
    Improved,
    /// Within the noise threshold (or informational).
    Unchanged,
    /// Present only in the new snapshot.
    Added,
    /// Present only in the old snapshot.
    Removed,
}

impl Verdict {
    /// Stable lowercase name for JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Regressed => "regressed",
            Verdict::Improved => "improved",
            Verdict::Unchanged => "unchanged",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Metric name.
    pub name: String,
    /// Baseline comparable value (`None` for added metrics).
    pub old: Option<f64>,
    /// New comparable value (`None` for removed metrics).
    pub new: Option<f64>,
    /// `new / old` when both sides exist and old is nonzero.
    pub ratio: Option<f64>,
    /// Comparison direction used.
    pub direction: Direction,
    /// The verdict.
    pub verdict: Verdict,
}

/// Diff configuration.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative noise threshold (0.30 = 30%).
    pub threshold: f64,
    /// Compare even when host shapes mismatch.
    pub force: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            threshold: DEFAULT_THRESHOLD,
            force: false,
        }
    }
}

/// A completed diff.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Host metadata of the baseline side.
    pub host_old: Option<HostMeta>,
    /// Host metadata of the new side.
    pub host_new: Option<HostMeta>,
    /// Human-readable host mismatch (present when shapes differ; a
    /// forced diff carries it through for the record).
    pub host_mismatch: Option<String>,
    /// Threshold used.
    pub threshold: f64,
    /// Per-metric results, sorted by name.
    pub diffs: Vec<MetricDiff>,
}

impl DiffReport {
    /// Metrics that regressed.
    #[must_use]
    pub fn regressions(&self) -> Vec<&MetricDiff> {
        self.diffs
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
            .collect()
    }

    /// Stable-field-order JSON document (`obsdiff/1` schema).
    #[must_use]
    pub fn to_json(&self) -> String {
        let host = |h: &Option<HostMeta>| h.as_ref().map_or("null".to_string(), HostMeta::to_json);
        let mut diffs = Vec::new();
        for d in &self.diffs {
            let opt = |v: Option<f64>| v.map_or("null".to_string(), fmt_f64);
            diffs.push(format!(
                "{{\"name\":{},\"old\":{},\"new\":{},\"ratio\":{},\
                 \"direction\":{},\"verdict\":{}}}",
                quote(&d.name),
                opt(d.old),
                opt(d.new),
                opt(d.ratio),
                quote(d.direction.name()),
                quote(d.verdict.name())
            ));
        }
        format!(
            "{{\"schema\":\"obsdiff/1\",\"threshold\":{},\"host_old\":{},\
             \"host_new\":{},\"host_mismatch\":{},\"regressions\":{},\"diffs\":[{}]}}\n",
            fmt_f64(self.threshold),
            host(&self.host_old),
            host(&self.host_new),
            self.host_mismatch
                .as_deref()
                .map_or("null".to_string(), quote),
            self.regressions().len(),
            diffs.join(",")
        )
    }

    /// Plain-text summary, one line per non-`Unchanged` metric plus a
    /// trailing total.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if let Some(m) = &self.host_mismatch {
            out.push_str(&format!("WARNING host mismatch: {m}\n"));
        }
        for d in &self.diffs {
            if d.verdict == Verdict::Unchanged {
                continue;
            }
            let ratio = d.ratio.map_or(String::from("-"), |r| format!("{:.3}x", r));
            out.push_str(&format!(
                "{:<10} {} old={} new={} ratio={}\n",
                d.verdict.name(),
                d.name,
                d.old.map_or(String::from("-"), fmt_f64),
                d.new.map_or(String::from("-"), fmt_f64),
                ratio
            ));
        }
        out.push_str(&format!(
            "{} metrics compared, {} regressed (threshold {:.0}%)\n",
            self.diffs.len(),
            self.regressions().len(),
            self.threshold * 100.0
        ));
        out
    }
}

/// Host shapes that must match for numbers to be comparable.
fn host_mismatch(old: Option<&HostMeta>, new: Option<&HostMeta>) -> Option<String> {
    match (old, new) {
        (None, None) => None,
        (Some(_), None) => Some("baseline has host metadata, new snapshot does not".to_string()),
        (None, Some(_)) => Some("new snapshot has host metadata, baseline does not".to_string()),
        (Some(o), Some(n)) => {
            if o.cores != n.cores {
                Some(format!(
                    "cores differ: baseline {} vs new {}",
                    o.cores, n.cores
                ))
            } else if o.pool_threads != n.pool_threads {
                Some(format!(
                    "pool_threads differ: baseline {} vs new {}",
                    o.pool_threads, n.pool_threads
                ))
            } else {
                None
            }
        }
    }
}

/// Compare `new` against the `old` baseline.
///
/// # Errors
/// Returns the host-mismatch description when shapes differ and
/// `config.force` is off; the caller maps this to exit code 2.
pub fn diff(old: &Snapshot, new: &Snapshot, config: &DiffConfig) -> Result<DiffReport, String> {
    let mismatch = host_mismatch(old.host.as_ref(), new.host.as_ref());
    if let Some(m) = &mismatch {
        if !config.force {
            return Err(format!("{m} (pass --force to compare anyway)"));
        }
    }
    let mut names: Vec<&String> = old.metrics.keys().collect();
    for name in new.metrics.keys() {
        if !old.metrics.contains_key(name) {
            names.push(name);
        }
    }
    names.sort();
    let mut diffs = Vec::new();
    for name in names {
        let old_v = old.metrics.get(name);
        let new_v = new.metrics.get(name);
        let entry = match (old_v, new_v) {
            (Some(o), Some(n)) => {
                let direction = direction_for(name, n);
                let (ov, nv) = (o.comparable(), n.comparable());
                let ratio = (ov != 0.0).then(|| nv / ov);
                let verdict = match (direction, ratio) {
                    (Direction::Informational, _) | (_, None) => Verdict::Unchanged,
                    (Direction::LowerIsBetter, Some(r)) => {
                        if r > 1.0 + config.threshold {
                            Verdict::Regressed
                        } else if r < 1.0 - config.threshold {
                            Verdict::Improved
                        } else {
                            Verdict::Unchanged
                        }
                    }
                    (Direction::HigherIsBetter, Some(r)) => {
                        if r < 1.0 - config.threshold {
                            Verdict::Regressed
                        } else if r > 1.0 + config.threshold {
                            Verdict::Improved
                        } else {
                            Verdict::Unchanged
                        }
                    }
                };
                MetricDiff {
                    name: name.clone(),
                    old: Some(ov),
                    new: Some(nv),
                    ratio,
                    direction,
                    verdict,
                }
            }
            (Some(o), None) => MetricDiff {
                name: name.clone(),
                old: Some(o.comparable()),
                new: None,
                ratio: None,
                direction: direction_for(name, o),
                verdict: Verdict::Removed,
            },
            (None, Some(n)) => MetricDiff {
                name: name.clone(),
                old: None,
                new: Some(n.comparable()),
                ratio: None,
                direction: direction_for(name, n),
                verdict: Verdict::Added,
            },
            (None, None) => unreachable!("name came from one of the maps"),
        };
        diffs.push(entry);
    }
    Ok(DiffReport {
        host_old: old.host.clone(),
        host_new: new.host.clone(),
        host_mismatch: mismatch,
        threshold: config.threshold,
        diffs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(metrics: &str, host: Option<&str>) -> Snapshot {
        let doc = match host {
            Some(h) => format!("{{\"schema\":\"bench/2\",\"host\":{h},\"metrics\":[{metrics}]}}"),
            None => format!("{{\"metrics\":[{metrics}]}}"),
        };
        parse_snapshot(&doc).expect("test snapshot parses")
    }

    const HOST: &str =
        "{\"cores\":4,\"pool_threads\":4,\"git_rev\":\"abc1234\",\"recorded_unix\":1700000000}";

    #[test]
    fn self_diff_is_clean() {
        let m = "{\"name\":\"b.ns_per_iter\",\"kind\":\"gauge\",\"value\":100.0}";
        let s = snap(m, Some(HOST));
        let report = diff(&s, &s, &DiffConfig::default()).expect("same host");
        assert!(report.regressions().is_empty());
        assert_eq!(report.diffs[0].verdict, Verdict::Unchanged);
        assert!(report.host_mismatch.is_none());
    }

    #[test]
    fn two_x_slowdown_regresses_and_two_x_speedup_improves() {
        let old = snap(
            "{\"name\":\"b.ns_per_iter\",\"kind\":\"gauge\",\"value\":100.0}",
            None,
        );
        let slow = snap(
            "{\"name\":\"b.ns_per_iter\",\"kind\":\"gauge\",\"value\":200.0}",
            None,
        );
        let fast = snap(
            "{\"name\":\"b.ns_per_iter\",\"kind\":\"gauge\",\"value\":50.0}",
            None,
        );
        let cfg = DiffConfig::default();
        assert_eq!(
            diff(&old, &slow, &cfg).unwrap().diffs[0].verdict,
            Verdict::Regressed
        );
        assert_eq!(
            diff(&old, &fast, &cfg).unwrap().diffs[0].verdict,
            Verdict::Improved
        );
    }

    #[test]
    fn throughput_direction_is_inverted() {
        let old = snap(
            "{\"name\":\"b.throughput_per_s\",\"kind\":\"gauge\",\"value\":100.0}",
            None,
        );
        let worse = snap(
            "{\"name\":\"b.throughput_per_s\",\"kind\":\"gauge\",\"value\":40.0}",
            None,
        );
        let report = diff(&old, &worse, &DiffConfig::default()).unwrap();
        assert_eq!(report.diffs[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn loghist_compares_on_p99_and_time_units_gate() {
        let mk = |p99: f64| {
            format!(
                "{{\"name\":\"pool.task_latency_s\",\"kind\":\"loghist\",\"unit\":\"s\",\
                 \"count\":100,\"sum\":1.0,\"mean\":0.01,\"min\":0.001,\"max\":0.1,\
                 \"p50\":0.01,\"p90\":0.02,\"p99\":{p99}}}"
            )
        };
        let old = snap(&mk(0.02), None);
        let new = snap(&mk(0.08), None);
        let report = diff(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(report.diffs[0].direction, Direction::LowerIsBetter);
        assert_eq!(report.diffs[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn host_mismatch_refuses_unless_forced() {
        let other =
            "{\"cores\":1,\"pool_threads\":4,\"git_rev\":\"def5678\",\"recorded_unix\":1700000001}";
        let m = "{\"name\":\"x\",\"kind\":\"counter\",\"value\":1}";
        let a = snap(m, Some(HOST));
        let b = snap(m, Some(other));
        assert!(diff(&a, &b, &DiffConfig::default()).is_err());
        let forced = diff(
            &a,
            &b,
            &DiffConfig {
                force: true,
                ..DiffConfig::default()
            },
        )
        .expect("forced diff proceeds");
        assert!(forced.host_mismatch.is_some());
    }

    #[test]
    fn added_and_removed_metrics_are_reported_not_gated() {
        let old = snap("{\"name\":\"gone\",\"kind\":\"counter\",\"value\":1}", None);
        let new = snap(
            "{\"name\":\"fresh\",\"kind\":\"counter\",\"value\":1}",
            None,
        );
        let report = diff(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(report.diffs.len(), 2);
        assert!(report.regressions().is_empty());
        assert_eq!(report.diffs[0].verdict, Verdict::Added);
        assert_eq!(report.diffs[1].verdict, Verdict::Removed);
    }

    #[test]
    fn json_output_is_stable_and_parses() {
        let m = "{\"name\":\"b.ns_per_iter\",\"kind\":\"gauge\",\"value\":100.0}";
        let s = snap(m, Some(HOST));
        let report = diff(&s, &s, &DiffConfig::default()).unwrap();
        let json = report.to_json();
        let doc = parse(&json).expect("diff json parses");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("obsdiff/1"));
        assert_eq!(doc.get("regressions").unwrap().as_num(), Some(0.0));
        assert_eq!(report.to_json(), json, "output is deterministic");
    }
}
