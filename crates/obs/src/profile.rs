//! Critical-path profiling over a run's happens-before graph.
//!
//! The profiler works on **neutral** inputs — per-rank communication
//! records ([`RankData`]) and the assembled [`Trace`] — so this crate
//! never depends on the simulator runtime; `mps` (which depends on
//! `obs`) converts its `RunReport` into these types.
//!
//! The critical path is reconstructed by backtracking from the
//! latest-finishing rank: walk backwards to the most recent receive that
//! actually blocked (`waited_s > 0`), hop to the matching send on the
//! peer rank (FIFO order per `(src, dst, tag)`, the runtime's matching
//! rule), and repeat until a rank segment reaches `t = 0`. The steps
//! tile `[0, Tp]` exactly, so the path's total virtual time equals the
//! parallel runtime by construction.

use crate::span::Category;
use crate::trace::Trace;

/// Receives that blocked for less than this are not path edges.
const WAIT_EPS: f64 = 1e-12;

/// Direction of one point-to-point completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommKind {
    /// A send to `to`; `time_s` is the send completion on the sender.
    Send {
        /// Destination rank.
        to: usize,
    },
    /// A receive from `from`; `time_s` is the receive completion.
    Recv {
        /// Source rank.
        from: usize,
    },
}

/// One point-to-point completion on a rank's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommRec {
    /// Send or receive, with the peer rank.
    pub kind: CommKind,
    /// Message tag (FIFO matching is per `(src, dst, tag)`).
    pub tag: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Completion time on the local rank's virtual clock, seconds.
    pub time_s: f64,
    /// How long a receive blocked waiting for the message (0 for sends
    /// and for receives that found the message already delivered).
    pub waited_s: f64,
}

/// One rank's communication timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RankData {
    /// Rank id.
    pub rank: usize,
    /// The rank's finish time (virtual seconds).
    pub finish_s: f64,
    /// Completions in program order.
    pub comm: Vec<CommRec>,
}

/// One step of the critical path, in chronological order.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStep {
    /// Execution on `rank` over `[start_s, end_s]`.
    Local {
        /// Executing rank.
        rank: usize,
        /// Segment start, virtual seconds.
        start_s: f64,
        /// Segment end, virtual seconds.
        end_s: f64,
    },
    /// A message in flight from `from` to `to` over `[start_s, end_s]`
    /// (send completion to receive completion).
    Message {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// Message tag.
        tag: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Send completion, virtual seconds.
        start_s: f64,
        /// Receive completion, virtual seconds.
        end_s: f64,
    },
}

impl PathStep {
    /// Duration of the step, seconds.
    #[must_use]
    pub fn dur_s(&self) -> f64 {
        match self {
            PathStep::Local { start_s, end_s, .. } | PathStep::Message { start_s, end_s, .. } => {
                end_s - start_s
            }
        }
    }

    /// The rank executing (local step) or receiving (message step).
    #[must_use]
    pub fn rank(&self) -> usize {
        match self {
            PathStep::Local { rank, .. } => *rank,
            PathStep::Message { to, .. } => *to,
        }
    }
}

/// The reconstructed critical path of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Steps in chronological order, tiling `[0, total_s]`.
    pub steps: Vec<PathStep>,
    /// Total virtual time of the path (= the parallel runtime `Tp`).
    pub total_s: f64,
    /// The rank whose finish defines `Tp`.
    pub end_rank: usize,
}

impl CriticalPath {
    /// Seconds the path spends executing locally on each rank, as
    /// `(rank, seconds)` sorted by rank.
    #[must_use]
    pub fn local_time_by_rank(&self) -> Vec<(usize, f64)> {
        let mut acc: Vec<(usize, f64)> = Vec::new();
        for step in &self.steps {
            if let PathStep::Local { rank, .. } = step {
                if let Some(entry) = acc.iter_mut().find(|(r, _)| r == rank) {
                    entry.1 += step.dur_s();
                } else {
                    acc.push((*rank, step.dur_s()));
                }
            }
        }
        acc.sort_unstable_by_key(|(r, _)| *r);
        acc
    }

    /// Seconds the path spends in message transit.
    #[must_use]
    pub fn message_time_s(&self) -> f64 {
        self.steps
            .iter()
            .filter(|s| matches!(s, PathStep::Message { .. }))
            .map(PathStep::dur_s)
            .sum()
    }
}

/// Why a critical path could not be reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// No ranks were supplied.
    Empty,
    /// A blocking receive had no matching send on the peer's timeline.
    UnmatchedRecv {
        /// Receiving rank.
        rank: usize,
        /// Claimed source rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// Backtracking failed to make progress (cyclic zero-time edges).
    NoProgress,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Empty => write!(f, "no ranks to profile"),
            ProfileError::UnmatchedRecv { rank, from, tag } => write!(
                f,
                "rank {rank}: blocking recv from {from} tag {tag} has no matching send"
            ),
            ProfileError::NoProgress => {
                write!(f, "critical-path backtracking made no progress")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// Reconstruct the run's critical path from per-rank communication
/// timelines.
///
/// # Errors
/// Returns [`ProfileError::Empty`] for no ranks,
/// [`ProfileError::UnmatchedRecv`] when FIFO matching fails, and
/// [`ProfileError::NoProgress`] if backtracking cycles.
pub fn critical_path(ranks: &[RankData]) -> Result<CriticalPath, ProfileError> {
    let end = ranks
        .iter()
        .max_by(|a, b| a.finish_s.total_cmp(&b.finish_s))
        .ok_or(ProfileError::Empty)?;
    let total_s = end.finish_s;

    let by_rank = |r: usize| ranks.iter().find(|d| d.rank == r);

    let mut steps: Vec<PathStep> = Vec::new();
    let mut rank = end.rank;
    let mut t = total_s;
    // Generous bound: each iteration consumes at least one comm event.
    let max_iters = ranks.iter().map(|r| r.comm.len()).sum::<usize>() + ranks.len() + 1;

    for _ in 0..max_iters {
        let Some(data) = by_rank(rank) else {
            // Unknown rank id in a message edge: close out at zero.
            steps.push(PathStep::Local {
                rank,
                start_s: 0.0,
                end_s: t,
            });
            break;
        };
        // Latest blocking recv completing at or before t.
        let blocking = data
            .comm
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                matches!(e.kind, CommKind::Recv { .. })
                    && e.waited_s > WAIT_EPS
                    && e.time_s <= t + WAIT_EPS
            })
            .max_by(|(_, a), (_, b)| a.time_s.total_cmp(&b.time_s));

        let Some((idx, recv)) = blocking else {
            steps.push(PathStep::Local {
                rank,
                start_s: 0.0,
                end_s: t,
            });
            break;
        };
        let CommKind::Recv { from } = recv.kind else {
            unreachable!("filtered to recvs");
        };
        steps.push(PathStep::Local {
            rank,
            start_s: recv.time_s,
            end_s: t,
        });

        // FIFO ordinal of this recv among (from -> rank, tag).
        let ordinal = data.comm[..idx]
            .iter()
            .filter(|e| {
                matches!(e.kind, CommKind::Recv { from: f } if f == from) && e.tag == recv.tag
            })
            .count();
        let sender = by_rank(from).ok_or(ProfileError::UnmatchedRecv {
            rank,
            from,
            tag: recv.tag,
        })?;
        let send = sender
            .comm
            .iter()
            .filter(|e| matches!(e.kind, CommKind::Send { to } if to == rank) && e.tag == recv.tag)
            .nth(ordinal)
            .ok_or(ProfileError::UnmatchedRecv {
                rank,
                from,
                tag: recv.tag,
            })?;

        steps.push(PathStep::Message {
            from,
            to: rank,
            tag: recv.tag,
            bytes: recv.bytes,
            start_s: send.time_s,
            end_s: recv.time_s,
        });

        if send.time_s > t - WAIT_EPS && from == rank {
            return Err(ProfileError::NoProgress);
        }
        rank = from;
        t = send.time_s;
    }

    if steps.is_empty()
        || !matches!(
            steps.last(),
            Some(PathStep::Local { start_s, .. }) if *start_s <= WAIT_EPS
        )
    {
        return Err(ProfileError::NoProgress);
    }

    steps.reverse();
    Ok(CriticalPath {
        steps,
        total_s,
        end_rank: end.rank,
    })
}

/// A span reference for top-k reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanCost {
    /// Owning track (rank).
    pub track: usize,
    /// Span name.
    pub name: String,
    /// Category.
    pub cat: Category,
    /// Span start, virtual seconds.
    pub start_s: f64,
    /// Cost: virtual seconds or joules depending on the report.
    pub cost: f64,
}

/// The `k` longest spans by virtual duration, descending.
#[must_use]
pub fn top_spans_by_time(trace: &Trace, k: usize) -> Vec<SpanCost> {
    let mut all: Vec<SpanCost> = trace
        .tracks
        .iter()
        .flat_map(|t| t.spans.iter())
        .map(|s| SpanCost {
            track: s.track,
            name: s.name.clone(),
            cat: s.cat,
            start_s: s.start_s,
            cost: s.dur_s(),
        })
        .collect();
    all.sort_by(|a, b| b.cost.total_cmp(&a.cost));
    all.truncate(k);
    all
}

/// The `k` most expensive spans by attached energy (`energy_j` field),
/// descending. Spans without an energy field are skipped.
#[must_use]
pub fn top_spans_by_energy(trace: &Trace, k: usize) -> Vec<SpanCost> {
    let mut all: Vec<SpanCost> = trace
        .tracks
        .iter()
        .flat_map(|t| t.spans.iter())
        .filter_map(|s| {
            s.fields.iter().find_map(|(name, value)| {
                if *name == "energy_j" {
                    value.as_f64().map(|j| SpanCost {
                        track: s.track,
                        name: s.name.clone(),
                        cat: s.cat,
                        start_s: s.start_s,
                        cost: j,
                    })
                } else {
                    None
                }
            })
        })
        .collect();
    all.sort_by(|a, b| b.cost.total_cmp(&a.cost));
    all.truncate(k);
    all
}

/// Wait time inside one phase on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSlack {
    /// Rank (track) id.
    pub rank: usize,
    /// Phase span name.
    pub phase: String,
    /// Phase start, virtual seconds.
    pub start_s: f64,
    /// Phase end, virtual seconds.
    pub end_s: f64,
    /// Seconds the rank spent blocked (wait spans) inside the phase.
    pub slack_s: f64,
}

/// Per-phase slack: for every phase span, the summed wall time of wait
/// spans on the same track overlapping the phase interval.
#[must_use]
pub fn phase_slack(trace: &Trace) -> Vec<PhaseSlack> {
    let mut out = Vec::new();
    for track in &trace.tracks {
        for phase in track.spans.iter().filter(|s| s.cat == Category::Phase) {
            let slack: f64 = track
                .spans
                .iter()
                .filter(|s| s.cat == Category::Wait)
                .map(|w| {
                    let lo = w.start_s.max(phase.start_s);
                    let hi = w.end_s.min(phase.end_s);
                    (hi - lo).max(0.0)
                })
                .sum();
            out.push(PhaseSlack {
                rank: track.track,
                phase: phase.name.clone(),
                start_s: phase.start_s,
                end_s: phase.end_s,
                slack_s: slack,
            });
        }
    }
    out
}

/// A complete profile of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// The rank-to-rank critical path, if reconstructable.
    pub critical_path: Result<CriticalPath, ProfileError>,
    /// Per-rank, per-phase wait time.
    pub phase_slack: Vec<PhaseSlack>,
    /// Longest spans by virtual time, descending.
    pub top_by_time: Vec<SpanCost>,
    /// Most expensive spans by energy, descending.
    pub top_by_energy: Vec<SpanCost>,
}

impl ProfileReport {
    /// Build a profile from the trace and communication timelines.
    #[must_use]
    pub fn build(trace: &Trace, ranks: &[RankData], k: usize) -> Self {
        Self {
            critical_path: critical_path(ranks),
            phase_slack: phase_slack(trace),
            top_by_time: top_spans_by_time(trace, k),
            top_by_energy: top_spans_by_energy(trace, k),
        }
    }

    /// Human-readable rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.critical_path {
            Ok(path) => {
                out.push_str(&format!(
                    "critical path: {:.6} s ending on rank {} ({} steps, {:.6} s in flight)\n",
                    path.total_s,
                    path.end_rank,
                    path.steps.len(),
                    path.message_time_s()
                ));
                for (rank, secs) in path.local_time_by_rank() {
                    out.push_str(&format!("  rank {rank}: {secs:.6} s on path\n"));
                }
            }
            Err(e) => out.push_str(&format!("critical path: unavailable ({e})\n")),
        }
        if !self.phase_slack.is_empty() {
            out.push_str("phase slack:\n");
            for s in &self.phase_slack {
                out.push_str(&format!(
                    "  rank {} {}: {:.6} s waiting of {:.6} s\n",
                    s.rank,
                    s.phase,
                    s.slack_s,
                    s.end_s - s.start_s
                ));
            }
        }
        if !self.top_by_time.is_empty() {
            out.push_str("top spans by virtual time:\n");
            for s in &self.top_by_time {
                out.push_str(&format!(
                    "  {:.6} s  rank {} {} [{}]\n",
                    s.cost,
                    s.track,
                    s.name,
                    s.cat.name()
                ));
            }
        }
        if !self.top_by_energy.is_empty() {
            out.push_str("top spans by energy:\n");
            for s in &self.top_by_energy {
                out.push_str(&format!(
                    "  {:.6} J  rank {} {} [{}]\n",
                    s.cost,
                    s.track,
                    s.name,
                    s.cat.name()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{FieldValue, TrackRecorder};

    fn send(to: usize, tag: u64, time_s: f64) -> CommRec {
        CommRec {
            kind: CommKind::Send { to },
            tag,
            bytes: 64,
            time_s,
            waited_s: 0.0,
        }
    }

    fn recv(from: usize, tag: u64, time_s: f64, waited_s: f64) -> CommRec {
        CommRec {
            kind: CommKind::Recv { from },
            tag,
            bytes: 64,
            time_s,
            waited_s,
        }
    }

    #[test]
    fn two_rank_path_tiles_runtime() {
        // Rank 0 computes 1.0s then sends; rank 1 waits for it, computes
        // to 1.6s. Path: local r0 [0,1.0], message [1.0,1.1], local r1
        // [1.1,1.6].
        let ranks = vec![
            RankData {
                rank: 0,
                finish_s: 1.05,
                comm: vec![send(1, 7, 1.0)],
            },
            RankData {
                rank: 1,
                finish_s: 1.6,
                comm: vec![recv(0, 7, 1.1, 0.9)],
            },
        ];
        let path = critical_path(&ranks).expect("path");
        assert!((path.total_s - 1.6).abs() < 1e-12);
        assert_eq!(path.end_rank, 1);
        assert_eq!(path.steps.len(), 3);
        let tiled: f64 = path.steps.iter().map(PathStep::dur_s).sum();
        assert!((tiled - path.total_s).abs() < 1e-9);
        assert!(matches!(
            path.steps[1],
            PathStep::Message { from: 0, to: 1, .. }
        ));
        assert!((path.message_time_s() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn non_blocking_recvs_are_ignored() {
        // Rank 1's recv found the message already there (waited 0): the
        // path never leaves rank 1.
        let ranks = vec![
            RankData {
                rank: 0,
                finish_s: 0.5,
                comm: vec![send(1, 0, 0.2)],
            },
            RankData {
                rank: 1,
                finish_s: 2.0,
                comm: vec![recv(0, 0, 1.0, 0.0)],
            },
        ];
        let path = critical_path(&ranks).expect("path");
        assert_eq!(path.steps.len(), 1);
        assert!(matches!(path.steps[0], PathStep::Local { rank: 1, .. }));
        assert!((path.total_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_ordinal_matches_second_send() {
        // Two same-tag messages 0 -> 1: the blocking recv is the second,
        // so it must match the second send (completion 0.8), not the first.
        let ranks = vec![
            RankData {
                rank: 0,
                finish_s: 0.9,
                comm: vec![send(1, 3, 0.4), send(1, 3, 0.8)],
            },
            RankData {
                rank: 1,
                finish_s: 1.5,
                comm: vec![recv(0, 3, 0.45, 0.0), recv(0, 3, 0.9, 0.3)],
            },
        ];
        let path = critical_path(&ranks).expect("path");
        let msg = path
            .steps
            .iter()
            .find(|s| matches!(s, PathStep::Message { .. }))
            .expect("message step");
        assert!((msg.dur_s() - (0.9 - 0.8)).abs() < 1e-12);
    }

    #[test]
    fn unmatched_recv_is_an_error() {
        let ranks = vec![
            RankData {
                rank: 0,
                finish_s: 0.5,
                comm: vec![],
            },
            RankData {
                rank: 1,
                finish_s: 1.0,
                comm: vec![recv(0, 9, 0.8, 0.2)],
            },
        ];
        assert_eq!(
            critical_path(&ranks),
            Err(ProfileError::UnmatchedRecv {
                rank: 1,
                from: 0,
                tag: 9
            })
        );
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(critical_path(&[]), Err(ProfileError::Empty));
    }

    fn profiled_trace() -> Trace {
        let mut trace = Trace::new("profile-test");
        let mut rec = TrackRecorder::new(0);
        rec.begin_phase("solve", 0.0);
        rec.leaf(
            "compute",
            Category::Compute,
            0.0,
            0.6,
            vec![(
                "energy_j",
                FieldValue::Joules(simcluster::units::Joules::new(12.0)),
            )],
        );
        rec.leaf("wait", Category::Wait, 0.6, 0.85, vec![]);
        rec.leaf(
            "network",
            Category::Network,
            0.85,
            0.95,
            vec![(
                "energy_j",
                FieldValue::Joules(simcluster::units::Joules::new(2.0)),
            )],
        );
        trace.push_track(rec.finish(1.0));
        trace
    }

    #[test]
    fn slack_and_topk_reports() {
        let trace = profiled_trace();
        let slack = phase_slack(&trace);
        assert_eq!(slack.len(), 1);
        assert!((slack[0].slack_s - 0.25).abs() < 1e-12);

        let by_time = top_spans_by_time(&trace, 2);
        assert_eq!(by_time.len(), 2);
        assert_eq!(by_time[0].name, "solve");
        assert!(by_time[0].cost >= by_time[1].cost);

        let by_energy = top_spans_by_energy(&trace, 5);
        assert_eq!(by_energy.len(), 2);
        assert_eq!(by_energy[0].name, "compute");
        assert!((by_energy[0].cost - 12.0).abs() < 1e-12);
    }

    #[test]
    fn report_renders_every_section() {
        let trace = profiled_trace();
        let ranks = vec![RankData {
            rank: 0,
            finish_s: 1.0,
            comm: vec![],
        }];
        let report = ProfileReport::build(&trace, &ranks, 3);
        let text = report.render();
        assert!(text.contains("critical path: 1.000000 s"));
        assert!(text.contains("phase slack:"));
        assert!(text.contains("top spans by virtual time:"));
        assert!(text.contains("top spans by energy:"));
    }
}
