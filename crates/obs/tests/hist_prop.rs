//! Property tests for [`obs::LogHistogram`]: recording is exact on count
//! and sum, quantiles are monotone and bounded by the recorded range's
//! bucket resolution, and shard merging is sound — a merged histogram is
//! bucket-identical to recording the concatenated stream, so merged
//! percentiles always bracket between the per-shard percentiles.

use obs::LogHistogram;
use proptest::prelude::*;

/// Positive, finite, log-uniform over the realistic latency range
/// (one nanosecond to ~5 hours, in seconds).
fn value() -> impl Strategy<Value = f64> {
    (0.0f64..1.0).prop_map(|u| 1e-9 * (2e4f64 / 1e-9).powf(u))
}

fn record_all(values: &[f64]) -> LogHistogram {
    let h = LogHistogram::new("s");
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Count is exact and sum is exact up to f64 accumulation order.
    #[test]
    fn count_and_sum_are_exact(values in proptest::collection::vec(value(), 0..200)) {
        let h = record_all(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        let expect: f64 = values.iter().sum();
        prop_assert!((h.sum() - expect).abs() <= 1e-9 * expect.abs() + 1e-12,
            "sum {} vs {}", h.sum(), expect);
    }

    /// Every quantile lies within one bucket's relative resolution of the
    /// recorded range: `q=0` at or above the minimum, `q=1` at most one
    /// sub-bucket step above the maximum.
    #[test]
    fn quantiles_are_bounded_by_range(values in proptest::collection::vec(value(), 1..200)) {
        let h = record_all(&values);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(0.0f64, f64::max);
        // One sub-bucket is a factor of 2^(1/16) in value.
        let step = 2f64.powf(1.0 / f64::from(obs::hist::SUB_BUCKETS));
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= lo, "q={q}: {v} below min {lo}");
            prop_assert!(v <= hi * step * (1.0 + 1e-12), "q={q}: {v} above max {hi} * step");
        }
    }

    /// Quantiles are monotone in `q`.
    #[test]
    fn quantiles_are_monotone(values in proptest::collection::vec(value(), 1..200)) {
        let h = record_all(&values);
        let mut prev = 0.0;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    /// Merging shards is exactly equivalent to recording the concatenated
    /// stream, and merged percentiles bracket between per-shard
    /// percentiles (the mixture property).
    #[test]
    fn merge_is_sound(
        a in proptest::collection::vec(value(), 1..120),
        b in proptest::collection::vec(value(), 1..120),
    ) {
        let ha = record_all(&a);
        let hb = record_all(&b);
        let merged = record_all(&a);
        merged.merge_from(&hb);

        // Bucket-identity with the concatenated stream.
        let mut both = a.clone();
        both.extend_from_slice(&b);
        let direct = record_all(&both);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert!((merged.sum() - direct.sum()).abs() <= 1e-9 * direct.sum().abs() + 1e-12);
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.quantile(q).to_bits(), direct.quantile(q).to_bits(),
                "merged and direct disagree at q={}", q);
        }

        // Mixture bracket: each merged quantile sits between the shard
        // quantiles (inclusive), because quantiles are bucket upper
        // bounds — pure monotone functions of bucket index.
        for q in [0.5, 0.9, 0.99] {
            let qa = ha.quantile(q);
            let qb = hb.quantile(q);
            let qm = merged.quantile(q);
            prop_assert!(qa.min(qb) <= qm && qm <= qa.max(qb),
                "q={q}: merged {qm} outside [{}, {}]", qa.min(qb), qa.max(qb));
        }

        // Exact min/max survive the merge.
        prop_assert_eq!(merged.min().to_bits(), ha.min().min(hb.min()).to_bits());
        prop_assert_eq!(merged.max().to_bits(), ha.max().max(hb.max()).to_bits());
    }
}
