//! Exit-code and report contract of the `obsdiff` binary: `0` when no
//! metric regressed, `1` on regressions (named in the report), `2` on
//! usage errors and unforced host-shape mismatches.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obsdiff"))
        .args(args)
        .output()
        .expect("obsdiff binary runs")
}

fn write_doc(name: &str, body: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("obsdiff-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, body).expect("fixture written");
    path
}

fn doc(host_cores: u64, seq_ns: f64, p99_s: f64) -> String {
    format!(
        concat!(
            "{{\"schema\":\"bench/2\",",
            "\"host\":{{\"cores\":{cores},\"pool_threads\":{cores},",
            "\"git_rev\":\"abc1234\",\"recorded_unix\":1754000000}},",
            "\"metrics\":[",
            "{{\"name\":\"bench.sweep.fig5_dense_seq.ns_per_iter\",",
            "\"kind\":\"gauge\",\"value\":{seq}}},",
            "{{\"name\":\"bench.sweep.grid_evals\",\"kind\":\"gauge\",\"value\":131072}},",
            "{{\"name\":\"isoee.eval_latency_s\",\"kind\":\"loghist\",\"unit\":\"s\",",
            "\"count\":1000,\"sum\":1.0,\"mean\":0.001,\"min\":0.0005,\"max\":{p99},",
            "\"p50\":0.0009,\"p90\":0.0015,\"p99\":{p99}}}",
            "]}}\n"
        ),
        cores = host_cores,
        seq = seq_ns,
        p99 = p99_s,
    )
}

#[test]
fn self_diff_is_clean_and_exits_zero() {
    let a = write_doc("self.json", &doc(4, 1.0e8, 0.002));
    let out = run(&[a.to_str().unwrap(), a.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 regressed"), "{stdout}");
}

#[test]
fn double_slowdown_exits_one_and_names_the_metric() {
    let old = write_doc("base.json", &doc(4, 1.0e8, 0.002));
    let new = write_doc("slow.json", &doc(4, 2.0e8, 0.002));
    let out = run(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let all = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        all.contains("bench.sweep.fig5_dense_seq.ns_per_iter"),
        "regressed metric must be named:\n{all}"
    );
}

#[test]
fn loghist_p99_regression_is_caught() {
    let old = write_doc("p99_base.json", &doc(4, 1.0e8, 0.002));
    let new = write_doc("p99_slow.json", &doc(4, 1.0e8, 0.008));
    let out = run(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let all = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(all.contains("isoee.eval_latency_s"), "{all}");
}

#[test]
fn host_mismatch_refuses_without_force() {
    let old = write_doc("host4.json", &doc(4, 1.0e8, 0.002));
    let new = write_doc("host8.json", &doc(8, 1.0e8, 0.002));
    let out = run(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let forced = run(&[old.to_str().unwrap(), new.to_str().unwrap(), "--force"]);
    assert_eq!(forced.status.code(), Some(0), "{forced:?}");
}

#[test]
fn json_report_has_stable_schema() {
    let a = write_doc("json.json", &doc(4, 1.0e8, 0.002));
    let out = run(&[a.to_str().unwrap(), a.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\":\"obsdiff/1\""), "{stdout}");
    assert!(stdout.contains("\"regressions\":0"), "{stdout}");
}

#[test]
fn missing_file_is_a_usage_error() {
    let out = run(&["/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn threshold_flag_widens_the_noise_band() {
    // 40% slowdown: regression at the default 30% threshold, noise at 50%.
    let old = write_doc("t_base.json", &doc(4, 1.0e8, 0.002));
    let new = write_doc("t_slow.json", &doc(4, 1.4e8, 0.002));
    let strict = run(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(strict.status.code(), Some(1), "{strict:?}");
    let loose = run(&[
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "0.5",
    ]);
    assert_eq!(loose.status.code(), Some(0), "{loose:?}");
}
