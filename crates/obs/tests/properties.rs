//! Property tests for the span recorder: nesting discipline, ordering,
//! and forced-close accounting under arbitrary well-formed op sequences.

use obs::span::{Category, TrackRecorder};
use proptest::prelude::*;

/// One recorder operation, with a positive virtual-time step.
#[derive(Debug, Clone)]
enum Op {
    Phase(u8),
    Enter(u8),
    Exit,
    Leaf(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<(Op, f64)>> {
    proptest::collection::vec(
        (0u8..4, 0u8..8, 1e-6f64..0.5).prop_map(|(kind, name, dt)| {
            let op = match kind {
                0 => Op::Phase(name),
                1 => Op::Enter(name),
                2 => Op::Exit,
                _ => Op::Leaf(name),
            };
            (op, dt)
        }),
        0..40,
    )
}

/// Replay `ops` against a recorder, returning the finished track plus the
/// counts the model expects: `(spans_opened, left_open)`.
fn replay(ops: &[(Op, f64)]) -> (obs::TrackTrace, usize, usize) {
    let mut rec = TrackRecorder::new(0);
    let mut t = 0.0f64;
    let mut open = 0usize;
    let mut opened = 0usize;
    let mut phase_seen = false;
    for (op, dt) in ops {
        match op {
            Op::Phase(n) => {
                rec.begin_phase(&format!("phase-{n}"), t);
                phase_seen = true;
                opened += 1;
            }
            Op::Enter(n) => {
                rec.enter(&format!("span-{n}"), Category::Collective, t);
                open += 1;
                opened += 1;
            }
            Op::Exit => {
                if open > 0 {
                    rec.exit(t, vec![]);
                    open -= 1;
                }
            }
            Op::Leaf(n) => {
                rec.leaf(&format!("leaf-{n}"), Category::Compute, t, t + dt, vec![]);
                opened += 1;
            }
        }
        t += dt;
    }
    // Phases close cleanly at finish; only stacked spans are forced.
    let _ = phase_seen;
    (rec.finish(t), opened, open)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_opened_span_is_recorded_exactly_once(ops in arb_ops()) {
        let (track, opened, _) = replay(&ops);
        // begin_phase replaces the running phase but still records the
        // old one, so records == opens regardless of interleaving.
        prop_assert_eq!(track.spans.len(), opened);
    }

    #[test]
    fn spans_are_sorted_and_intervals_valid(ops in arb_ops()) {
        let (track, _, _) = replay(&ops);
        for w in track.spans.windows(2) {
            prop_assert!(w[0].start_s <= w[1].start_s + 1e-15);
        }
        for s in &track.spans {
            prop_assert!(s.end_s >= s.start_s);
            prop_assert!(s.host_end_ns >= s.host_start_ns);
        }
    }

    #[test]
    fn forced_closes_match_spans_left_open(ops in arb_ops()) {
        let (track, _, left_open) = replay(&ops);
        let forced = track.spans.iter().filter(|s| s.forced_close).count();
        prop_assert_eq!(forced, left_open);
    }

    #[test]
    fn stack_spans_nest_properly(ops in arb_ops()) {
        // Any two stack-recorded (collective) spans are either disjoint
        // or nested — never partially overlapping. (Leaf and phase spans
        // follow different rules: phases tile, leaves sit inside the
        // current open span.)
        let (track, _, _) = replay(&ops);
        let stack_spans: Vec<_> = track
            .spans
            .iter()
            .filter(|s| s.cat == Category::Collective)
            .collect();
        for a in &stack_spans {
            for b in &stack_spans {
                let disjoint = a.end_s <= b.start_s + 1e-15 || b.end_s <= a.start_s + 1e-15;
                let a_in_b = b.start_s <= a.start_s + 1e-15 && a.end_s <= b.end_s + 1e-15;
                let b_in_a = a.start_s <= b.start_s + 1e-15 && b.end_s <= a.end_s + 1e-15;
                prop_assert!(
                    disjoint || a_in_b || b_in_a,
                    "partial overlap: [{}, {}] vs [{}, {}]",
                    a.start_s, a.end_s, b.start_s, b.end_s
                );
            }
        }
    }

    #[test]
    fn phase_spans_tile_without_overlap(ops in arb_ops()) {
        let (track, _, _) = replay(&ops);
        let mut phases: Vec<_> = track
            .spans
            .iter()
            .filter(|s| s.cat == Category::Phase)
            .collect();
        phases.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        for w in phases.windows(2) {
            prop_assert!(
                w[0].end_s <= w[1].start_s + 1e-15,
                "phases overlap: {} ends {} after {} starts {}",
                w[0].name, w[0].end_s, w[1].name, w[1].start_s
            );
        }
    }
}
