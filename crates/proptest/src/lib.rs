//! A small, dependency-free property-testing harness with a
//! [proptest](https://docs.rs/proptest)-compatible API **subset**.
//!
//! The workspace builds fully offline, so instead of the crates.io
//! `proptest` this in-tree crate provides the pieces the test suites
//! actually use:
//!
//! * numeric range strategies (`0.0f64..1.0`, `1usize..=64`, …),
//! * tuple strategies (up to 8 elements), [`Strategy::prop_map`],
//! * [`collection::vec`] with exact or ranged lengths,
//! * [`any`] for full-range primitives,
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   `prop_assert!`, `prop_assert_eq!` and `prop_assume!`.
//!
//! Generation is deterministic: each test function derives its RNG seed
//! from its own name, so failures reproduce exactly across runs. There is
//! no shrinking — failing inputs are printed in full by the assertion
//! message instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic xorshift64* generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a seed (zero is remapped to a fixed odd seed).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`; `lo < hi` required.
    pub fn next_in_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty integer range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }
}

/// Hash a test name into an RNG seed (FNV-1a).
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                rng.next_in_u64(self.start as u64, self.end as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range");
                if hi == u64::MAX && lo == 0 {
                    rng.next_u64() as $t
                } else {
                    rng.next_in_u64(lo, hi + 1) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Full-range strategy for a primitive type (proptest's `any::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Create a full-range strategy for `T`.
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Something usable as a vector-length specification: an exact `usize`
    /// or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.sample(rng)
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A vector strategy with elementwise strategy `element` and length
    /// spec `len` (exact or range), mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// Expands to an early `return` from the per-case closure the
/// [`proptest!`] macro wraps each body in.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(x in strategy, ..) { body }` runs
/// `body` for `config.cases` deterministic random samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for _case in 0..config.cases {
                    let ($($arg,)*) =
                        ($($crate::Strategy::sample(&($strat), &mut rng),)*);
                    // The closure gives `prop_assume!` an early-exit scope.
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = TestRng::new(7);
        let s = 1.5f64..9.25;
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((1.5..9.25).contains(&v));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1u32..=4).sample(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::new(5);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn vec_lengths_follow_spec() {
        let mut rng = TestRng::new(11);
        let exact = collection::vec(0.0f64..1.0, 5usize);
        assert_eq!(exact.sample(&mut rng).len(), 5);
        let ranged = collection::vec(0.0f64..1.0, 1usize..8);
        for _ in 0..100 {
            let n = ranged.sample(&mut rng).len();
            assert!((1..8).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
