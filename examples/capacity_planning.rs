//! Capacity planning with iso-energy-efficiency contours: how fast must
//! the workload grow to hold energy efficiency constant as the machine
//! scales? This is the energy analog of Grama's isoefficiency function —
//! the quantity that makes "is this application worth scaling to the full
//! machine?" a calculation instead of a guess.
//!
//! Run with: `cargo run --release --example capacity_planning`

use iso_energy_efficiency::isoee::apps::{AppModel, CgModel, FtModel};
use iso_energy_efficiency::isoee::scaling::iso_ee_contour;
use iso_energy_efficiency::isoee::MachineParams;

fn contour(name: &str, app: &dyn AppModel, target: f64, unit: &str) {
    let mach = MachineParams::system_g(2.8e9);
    println!("--- {name}: workload needed to hold EE >= {target} ---");
    println!("  p       n({unit})         growth vs p=16");
    // The per-p bisections run in parallel on the POOL_THREADS pool; the
    // result order (and every bit of every value) matches the sequential
    // loop this example used to run.
    let ps = [16usize, 64, 256, 1024];
    let contour = iso_ee_contour(app, &mach, &ps, target, 1e3, 1e13).expect("sweep evaluates");
    let mut base: Option<f64> = None;
    for (&p, n) in ps.iter().zip(contour) {
        match n {
            Some(n) => {
                let b = *base.get_or_insert(n);
                println!("  {p:<6}  {n:<14.3e}  {:>6.1}x", n / b);
            }
            None => println!("  {p:<6}  unreachable below n = 1e13"),
        }
    }
    println!();
}

fn main() {
    println!("== Iso-energy-efficiency capacity planning (SystemG) ==\n");
    contour("FT (EE = 0.90)", &FtModel::system_g(), 0.90, "grid points");
    contour("FT (EE = 0.70)", &FtModel::system_g(), 0.70, "grid points");
    contour("CG (EE = 0.95)", &CgModel::system_g(), 0.95, "matrix rows");
    println!(
        "Interpretation: FT's quadratic message overhead forces steep but\n\
         *finite* workload growth — efficiency is always recoverable by\n\
         growing n. CG is different: its replicated vector work grows\n\
         proportionally to n, so past a parallelism threshold NO workload\n\
         size reaches the target — its iso-energy-efficiency is bounded.\n\
         That distinction is exactly what the contour function quantifies."
    );
}
