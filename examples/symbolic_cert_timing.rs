//! Timing probe behind the EXPERIMENTS.md "parametric certification"
//! table: symbolic for-all-`p` certification wall time vs the concrete
//! per-`p` checker at `p ∈ {64, 1024, 4096, 65536}`.
//!
//! Run with `cargo run --release --example symbolic_cert_timing`.
//!
//! The concrete checker elaborates every rank and builds a `p²` channel
//! matrix, so `p = 65536` (4.3 G channels) is reported as infeasible and
//! skipped rather than attempted; the symbolic certificate's closed-form
//! counts and power verdicts still evaluate there in microseconds.

use std::time::Instant;

use isoee::interval::MachBox;
use isoee::{power_cap_verdict, sym_cost_bounds, MachineParams};
use plan::{analyze_plan, certify_plan, CommPlan, Domain};

/// Median-of-3 wall time for `f`, plus its last result.
fn timed<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut samples = Vec::new();
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        out = Some(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    (samples[1], out.expect("ran"))
}

fn fmt_s(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

fn main() {
    let class = npb::Class::S;
    let plans: Vec<(&str, CommPlan, Domain)> = vec![
        (
            "FT",
            npb::ft_plan(&npb::FtConfig::class(class)),
            npb::ft_domain(),
        ),
        (
            "EP",
            npb::ep_plan(&npb::EpConfig::class(class)),
            npb::ep_domain(),
        ),
        (
            "CG",
            npb::cg_plan(&npb::CgConfig::class(class)),
            npb::cg_domain(),
        ),
    ];
    let mach = MachBox::from_params(&MachineParams::system_g(2.8e9));
    let concrete_ps: &[u64] = &[64, 1024, 4096, 65536];
    // The concrete checker's p² channel matrix: 4096² is ~17 M channels
    // (seconds, gigabyte-scale); 65536² is 4.3 G channels — infeasible.
    let concrete_limit: u64 = 4096;

    println!("plan | domain | symbolic certify (for all p) | obligations");
    for (name, plan, domain) in &plans {
        let (dt, cert) = timed(|| certify_plan(plan, domain));
        assert!(cert.certified, "{name}: {:?}", cert.failure);
        println!(
            "{name} | {domain} | {} | {} ({} base cases)",
            fmt_s(dt),
            cert.obligations.len(),
            cert.base_ps.len()
        );
    }

    println!();
    println!("plan | p | concrete analyze_plan | symbolic count eval | symbolic/concrete");
    for (name, plan, domain) in &plans {
        let cert = certify_plan(plan, domain);
        for &p in concrete_ps {
            if !domain.contains(p) {
                println!("{name} | {p} | — (p outside declared domain) | — | —");
                continue;
            }
            let (dt_sym, counts) = timed(|| cert.counts(p));
            let counts = counts.expect("admissible p evaluates");
            if p > concrete_limit {
                println!(
                    "{name} | {p} | skipped (p² = {:.1e} channels, infeasible) | {} | —",
                    (p as f64) * (p as f64),
                    fmt_s(dt_sym)
                );
                continue;
            }
            let (dt_conc, analysis) =
                timed(|| analyze_plan(plan, usize::try_from(p).expect("fits")));
            assert!(analysis.deadlock_free(), "{name} p={p}");
            #[allow(clippy::cast_precision_loss)]
            {
                assert!(
                    counts.messages.contains(analysis.total.messages as f64),
                    "{name} p={p}: symbolic enclosure must contain concrete totals"
                );
            }
            println!(
                "{name} | {p} | {} | {} | {:.0}×",
                fmt_s(dt_conc),
                fmt_s(dt_sym),
                dt_conc / dt_sym.max(1e-9)
            );
        }
    }

    println!();
    println!("power-cap verdicts over p ≤ 4096 (System G @ 2.8 GHz, class S):");
    for (name, plan, domain) in &plans {
        let clamped = domain.with_max(4096);
        let cert = certify_plan(plan, &clamped);
        let (dt, verdict) = timed(|| power_cap_verdict(&cert, &mach, 2000.0));
        println!("{name} | cap 2 kW | {verdict:?} | decided in {}", fmt_s(dt));
        let c = sym_cost_bounds(
            &cert,
            4096.min(
                clamped
                    .admissible()
                    .map_or(4096, |ps| ps.last().copied().unwrap_or(4096)),
            ),
            &mach,
        )
        .expect("domain max evaluates");
        println!(
            "{name} | avg power at domain max p={}: [{:.0}, {:.0}] W",
            c.p,
            c.enclosure.ep.lo / c.enclosure.tp.hi,
            c.enclosure.ep.hi / c.enclosure.tp.lo
        );
    }
}
