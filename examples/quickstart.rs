//! Quickstart: evaluate iso-energy-efficiency for an application model,
//! and validate a prediction against a simulated measurement.
//!
//! Run with: `cargo run --release --example quickstart`

use iso_energy_efficiency::isoee::apps::{AppModel, FtModel};
use iso_energy_efficiency::isoee::{model, MachineParams};
use iso_energy_efficiency::mps::{run, World};
use iso_energy_efficiency::npb::{ft_kernel, Class, FtConfig};
use iso_energy_efficiency::simcluster::system_g;

fn main() {
    // ------------------------------------------------------------------
    // 1. Analytical: how efficient is FT as SystemG scales?
    // ------------------------------------------------------------------
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    let n = (1u64 << 20) as f64;

    println!("iso-energy-efficiency of FT on SystemG (n = {n}):");
    println!("  p      EEF        EE");
    for p in [1usize, 4, 16, 64, 256, 1024] {
        let app = ft.app_params(n, p);
        println!(
            "  {p:<5}  {:+8.4}  {:8.4}",
            model::eef(&mach, &app, p).expect("positive baseline"),
            model::ee(&mach, &app, p).expect("positive baseline")
        );
    }

    // ------------------------------------------------------------------
    // 2. Simulated measurement: run the actual FT kernel on the simulated
    //    cluster and compare measured energy with the model's prediction.
    // ------------------------------------------------------------------
    let world = World::new(system_g(), 2.8e9).with_alpha(0.86);
    let cfg = FtConfig::class(Class::S);
    let p = 8;
    let report = run(&world, p, move |ctx| ft_kernel(ctx, cfg));
    let measured = report.energy(&world).total();
    let span = report.span();

    println!("\nsimulated FT class S on {p} ranks:");
    println!("  virtual span    {span:.6} s");
    println!("  measured energy {:.3} J", measured.raw());
    println!("  verified        {}", report.ranks[0].result.verified);
}
