//! Record a 4-rank FT run as a Perfetto trace: per-rank span tracks
//! (phases with nested compute/memory/network/wait slices), PowerPack
//! power samples as counter tracks, and a critical-path profile of the
//! same run printed to the console.
//!
//! Run with: `cargo run --release --example trace_ft [out.json]`
//! then open the JSON file in <https://ui.perfetto.dev>.

use iso_energy_efficiency::mps::{run, World};
use iso_energy_efficiency::npb::{ft_kernel, Class, FtConfig};
use iso_energy_efficiency::obs::{profile::ProfileReport, ObsConfig};
use iso_energy_efficiency::powerpack::PowerProfile;
use iso_energy_efficiency::simcluster::{system_g, EnergyMeter};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_ft.json".to_string());
    let p = 4;
    let cfg = FtConfig::class(Class::W);
    let world = World::new(system_g(), 2.8e9)
        .with_alpha(0.86)
        .with_obs(ObsConfig::enabled().with_metrics(true));

    println!("running FT class W on {p} simulated ranks (tracing on)...");
    let report = run(&world, p, move |ctx| ft_kernel(ctx, cfg));
    let mut trace = report.trace("FT class W").expect("tracing was enabled");

    // PowerPack counter tracks: sample per-component power across ranks.
    let meter = EnergyMeter::new(world.cluster.node.clone(), world.f_hz);
    let profile = PowerProfile::sample(&meter, &report.logs(), report.span() / 400.0);
    for (name, pick) in [
        ("power cpu", 0usize),
        ("power memory", 1),
        ("power net", 2),
        ("power total", 5),
    ] {
        let series = profile
            .samples
            .iter()
            .map(|s| {
                let w = [s.cpu_w, s.mem_w, s.net_w, s.disk_w, s.other_w];
                (
                    s.t_s,
                    if pick < 5 {
                        w[pick].raw()
                    } else {
                        s.total_w().raw()
                    },
                )
            })
            .collect();
        trace.add_counter_track(name, "W", series);
    }

    iso_energy_efficiency::obs::perfetto::write_file(&trace, std::path::Path::new(&out))
        .expect("write trace file");
    println!(
        "wrote {out}: {} spans on {} tracks, {} counter tracks — open it in ui.perfetto.dev",
        trace.span_count(),
        trace.tracks.len(),
        trace.counters.len()
    );

    // Metrics snapshot (per-collective message/byte counters, cache hits).
    println!("\nmetrics snapshot:");
    print!("{}", iso_energy_efficiency::obs::global().snapshot_text());

    // Critical path, phase slack and top-k spans of the same run.
    let profile_report = ProfileReport::build(&trace, &report.profile_ranks(), 5);
    println!("\n{}", profile_report.render());
}
