//! DVFS advisor: pick the processor frequency that maximizes energy
//! efficiency for a given application and scale, optionally under a cluster
//! power cap — the "policy module" use case the paper's introduction
//! motivates (quantitative power-performance policies instead of
//! trial-and-error controller tuning).
//!
//! Run with: `cargo run --release --example dvfs_advisor`
use iso_energy_efficiency::isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use iso_energy_efficiency::isoee::{model, MachineParams};

const DVFS: [f64; 4] = [1.6e9, 2.0e9, 2.4e9, 2.8e9];

/// Mean per-core power of a run: `Ep / (p · Tp)`.
fn mean_power_per_core(
    mach: &MachineParams,
    app: &isoee::AppParams,
    p: usize,
) -> simcluster::units::Watts {
    model::ep(mach, app, p) / (p as f64 * model::tp(mach, app, p))
}

fn advise(name: &str, app: &dyn AppModel, n: f64, p: usize, cap_w_per_core: f64) {
    let base = MachineParams::system_g(2.8e9);
    println!("--- {name}: n = {n}, p = {p}, cap = {cap_w_per_core} W/core ---");
    println!("  f (GHz)   EE        mean W/core   Ep (J)      within cap");
    let mut best: Option<(f64, f64)> = None;
    for &f in &DVFS {
        let mach = base.at_frequency(f);
        let a = app.app_params(n, p);
        let ee = model::ee(&mach, &a, p).expect("positive baseline");
        let watts = mean_power_per_core(&mach, &a, p);
        let ep = model::ep(&mach, &a, p);
        let ok = watts <= simcluster::units::Watts::new(cap_w_per_core);
        println!(
            "  {:<8.1}  {ee:<8.4}  {:<12.2}  {:<10.1}  {}",
            f / 1e9,
            watts.raw(),
            ep.raw(),
            if ok { "yes" } else { "NO" }
        );
        if ok && best.is_none_or(|(_, b)| ee > b) {
            best = Some((f, ee));
        }
    }
    match best {
        Some((f, ee)) => println!(
            "  => run at {:.1} GHz (EE = {ee:.4}) — best efficiency within the cap\n",
            f / 1e9
        ),
        None => println!("  => no DVFS state satisfies the cap; reduce p or the workload\n"),
    }
}

fn main() {
    println!("== DVFS advisor (SystemG, power-capped) ==\n");
    // A generous cap: every state qualifies; the advisor picks by EE alone.
    advise("CG", &CgModel::system_g(), 75_000.0, 64, 40.0);
    // A tight cap: the top states exceed it, forcing a downclock.
    advise("EP", &EpModel::system_g(), (1u64 << 22) as f64, 64, 30.0);
    // FT: frequency barely matters, so the advisor exposes that the cap
    // can be met nearly for free.
    advise("FT", &FtModel::system_g(), (1u64 << 20) as f64, 64, 30.0);
}
