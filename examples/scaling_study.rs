//! The paper's §V.B scalability study, end to end: build the three
//! application models, sweep parallelism/frequency/workload, and print the
//! per-application tuning advice the iso-energy-efficiency model supports.
//!
//! Run with: `cargo run --release --example scaling_study`

use iso_energy_efficiency::isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use iso_energy_efficiency::isoee::scaling::{best_frequency, ee_surface_pf};
use iso_energy_efficiency::isoee::{model, MachineParams};

const DVFS: [f64; 4] = [1.6e9, 2.0e9, 2.4e9, 2.8e9];

fn study(name: &str, app: &dyn AppModel, n: f64) {
    let mach = MachineParams::system_g(2.8e9);
    let ps = [1usize, 4, 16, 64, 256];

    println!("--- {name} (n = {n}) ---");
    let surface = ee_surface_pf(app, &mach, n, &ps, &DVFS).expect("sweep evaluates");
    print!("  EE by p at 2.8 GHz: ");
    for (j, p) in ps.iter().enumerate() {
        print!("p={p}:{:.3}  ", surface.at(DVFS.len() - 1, j));
    }
    println!();

    // Sensitivity of EE to frequency at p = 64.
    let a = app.app_params(n, 64);
    let ee_lo = model::ee(&mach.at_frequency(1.6e9), &a, 64).expect("positive baseline");
    let ee_hi = model::ee(&mach, &a, 64).expect("positive baseline");
    let sensitivity = ee_hi - ee_lo;
    let (best_f, best_ee) = best_frequency(app, &mach, n, 64, &DVFS).expect("sweep evaluates");
    println!(
        "  frequency sensitivity at p=64: EE(2.8) − EE(1.6) = {sensitivity:+.4}; \
         best state {:.1} GHz (EE {best_ee:.3})",
        best_f / 1e9
    );

    // Advice, in the paper's terms.
    let drop = surface.at(DVFS.len() - 1, 0) - surface.at(DVFS.len() - 1, ps.len() - 1);
    if drop < 0.05 {
        println!("  advice: near-ideal iso-energy-efficiency; scale p freely (EP-like).");
    } else if sensitivity.abs() < 0.005 {
        println!(
            "  advice: efficiency is communication-bound; frequency won't help — \
             grow n with p (FT-like)."
        );
    } else {
        println!(
            "  advice: overhead is computational; run at the top DVFS state and \
             grow n with p (CG-like)."
        );
    }
    println!();
}

fn main() {
    println!("== Iso-energy-efficiency scalability study (SystemG) ==\n");
    study("EP", &EpModel::system_g(), (1u64 << 22) as f64);
    study("FT", &FtModel::system_g(), (1u64 << 20) as f64);
    study("CG", &CgModel::system_g(), 75_000.0);
}
