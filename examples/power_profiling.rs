//! PowerPack-style power profiling of a simulated parallel run: component-
//! level power traces synchronized with application phases, per-phase
//! energy, and the idle-baseline decomposition of the paper's Fig. 10.
//!
//! Run with: `cargo run --release --example power_profiling`

use iso_energy_efficiency::mps::{run, World};
use iso_energy_efficiency::npb::{ft_kernel, Class, FtConfig};
use iso_energy_efficiency::powerpack::{summary_table, Session};
use iso_energy_efficiency::simcluster::{system_g, EnergyMeter};

fn main() {
    let world = World::new(system_g(), 2.8e9).with_alpha(0.86);
    let p = 4;
    let cfg = FtConfig::class(Class::W);

    println!("running FT class W on {p} simulated ranks...");
    let report = run(&world, p, move |ctx| ft_kernel(ctx, cfg));

    let meter = EnergyMeter::new(world.cluster.node.clone(), world.f_hz);
    let session = Session::new(meter).with_sample_interval(report.span() / 200.0);

    let logs = report.logs();
    let markers: Vec<_> = report.ranks.iter().map(|r| r.markers.clone()).collect();
    let summary = session.measure(&logs, &markers);
    println!("\n{}", summary_table(&summary));

    let profile = session.profile(&logs);
    let idle = profile.idle_baseline_w(session.meter()).raw();
    println!(
        "trace: {} samples at {:.2e} s",
        profile.samples.len(),
        profile.dt_s
    );
    println!(
        "idle baseline {idle:.1} W | peak {:.1} W | mean {:.1} W",
        profile.peak_w().raw(),
        profile.mean_w().raw()
    );

    // A tiny ASCII rendition of the total-power trace (the Fig.-10 shape).
    println!("\ntotal system power over time (each column = 1/60th of the run):");
    let cols = 60usize;
    let peak = profile.peak_w().raw();
    for level in (1..=8).rev() {
        let threshold = idle + (peak - idle) * f64::from(level) / 8.0;
        let mut line = String::with_capacity(cols);
        for c in 0..cols {
            let idx = c * (profile.samples.len() - 1) / (cols - 1);
            let w = profile.samples[idx].total_w().raw();
            line.push(if w >= threshold { '#' } else { ' ' });
        }
        println!("  {threshold:7.1} W |{line}");
    }
    println!("  {idle:7.1} W +{}", "-".repeat(cols));
    println!("            (idle baseline)");
}
