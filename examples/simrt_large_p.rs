//! Run NPB FT at thousand-rank scale on the simrt discrete-event engine —
//! the scaling regime of the paper's Figs. 5–7, far beyond what
//! thread-per-rank simulation can host — and print the per-collective
//! counters cross-checked against the static plan analyzer.
//!
//! Run with: `cargo run --release --example simrt_large_p [p]`
//! (default `p = 1024`; try 4096).

use iso_energy_efficiency::mps::World;
use iso_energy_efficiency::npb::{ft_plan, Class, FtConfig};
use iso_energy_efficiency::plan::analyze_plan;
use iso_energy_efficiency::simcluster::system_g;
use iso_energy_efficiency::simrt::{self, Detail, EngineConfig};

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .map_or(1024, |a| a.parse().expect("p must be a positive integer"));
    let cfg = FtConfig::class(Class::S);
    let plan = ft_plan(&cfg);
    let world = World::new(system_g(), 2.8e9);

    // Certify the plan statically first: shape, matching, deadlock.
    let analysis = analyze_plan(&plan, p);
    assert!(analysis.clean(), "static findings: {:?}", analysis.findings);

    println!("running FT class S on {p} simulated ranks (event engine, aggregate detail)...");
    let engine_cfg = EngineConfig::default().with_detail(Detail::Off);
    let out = simrt::try_run_plan_with(&engine_cfg, &world, p, &plan).expect("ft completes");

    let totals = out.report.total_counters();
    println!(
        "done in {:.2}s wall: {} engine steps, {} sends, {} wakes",
        out.stats.wall_s, out.stats.steps, out.stats.sends, out.stats.wakes
    );
    println!(
        "virtual span {:.4}s, energy {:?}",
        out.report.span(),
        out.report.energy(&world)
    );
    #[allow(clippy::cast_precision_loss)]
    {
        assert_eq!(
            totals.messages, analysis.total.messages as f64,
            "dynamic message count must equal the static plan count"
        );
        assert_eq!(
            totals.bytes, analysis.total.bytes as f64,
            "dynamic byte count must equal the static plan count"
        );
    }
    println!(
        "counters match the static analysis: {} messages, {} bytes",
        analysis.total.messages, analysis.total.bytes
    );
}
